"""The ``repro serve`` application: asyncio front end, one job worker.

Architecture, smallest thing that holds the durability story together:

- the **asyncio loop** owns all mutable service state (queues, counters,
  the serve journal).  HTTP handlers and the job worker coroutine run on
  it, so no lock guards any of that state;
- the **job worker** is one coroutine driving one
  :class:`~concurrent.futures.ThreadPoolExecutor` thread.  Campaigns run
  serially (``jobs=1``) in-process, sharing the decoded micro-op and
  pairing caches across jobs exactly like consecutive CLI runs would;
- **durability before acknowledgement**: a submission is journalled
  (fsync'd) before the 202 leaves the socket, so any job a client saw
  accepted survives SIGKILL.  Completion is journalled before the status
  endpoint reports it;
- **restart is recovery**: constructing the app folds the journal —
  admitted minus terminal, in admission order, re-enqueued.  A half-run
  check job resumes from its own runner journal and merges byte-identical
  to an uninterrupted run;
- **drain is cancellation**: SIGTERM/SIGINT (or ``POST /v1/drain``) stops
  admissions (429 ``draining``), sets the running job's cancel event, lets
  the runner journal it, exports open spans as aborted and exits 3 — the
  same resumable contract as an interrupted ``repro check``.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict
from pathlib import Path

from repro.errors import ServeRejected
from repro.obs.events import (
    EventBus,
    JobDoneEvent,
    JobRejectedEvent,
    JobStartedEvent,
    JobSubmittedEvent,
    ServeDrainEvent,
)
from repro.obs.export import SERVE_SCHEMA_VERSION, envelope
from repro.obs.spans import SpanTracer
from repro.serve.http import (
    BadRequest,
    Request,
    json_body,
    read_request,
    response_bytes,
    send_response,
)
from repro.serve.jobs import VERBS, JobSpec, execute_job
from repro.serve.queues import TenantQueues
from repro.serve.store import ServeStore

__all__ = ["ServeApp"]

#: Serve topics mirrored into the ``/v1/events`` ring buffer.
EVENT_TOPICS = ("job_submitted", "job_rejected", "job_started", "job_done",
                "serve_drain")

#: Ring-buffer capacity for ``/v1/events`` (bounded state, like the queues).
EVENT_RING = 1000

#: Seconds of back-off suggested per queued job in a 429 ``Retry-After``.
RETRY_AFTER_PER_JOB_S = 2.0


class ServeApp:
    """One service instance bound to one journal directory."""

    def __init__(self, journal_dir: str | Path, host: str = "127.0.0.1",
                 port: int = 0, queue_depth: int = 8, max_tenants: int = 16,
                 bus: EventBus | None = None) -> None:
        self.host = host
        self.port = port
        self.store = ServeStore(journal_dir)
        self.queues = TenantQueues(queue_depth, max_tenants)
        self.bus = bus or EventBus()
        self.draining = False
        self.drain_reason = ""
        self.counters = {
            "submitted": 0,
            "rejected": 0,
            "done": 0,
            "failed": 0,
            "aborted": 0,
            "resumed_jobs": len(self.store.recovered),
            "corrupt_journal_records": self.store.corrupt_records,
        }
        self._events: list[dict] = []
        self._event_seq = 0
        for topic in EVENT_TOPICS:
            self.bus.subscribe(topic, self._make_recorder(topic))
        self._running: tuple[JobSpec, threading.Event] | None = None
        self._kick: asyncio.Event | None = None
        self._stopping: asyncio.Event | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-job"
        )
        # Jobs lost by a previous epoch re-enter the queue unchecked: they
        # were admitted under the bound once already.
        for spec in self.store.recovered:
            self.queues.requeue(spec)

    # ---- event ring ----------------------------------------------------------

    def _make_recorder(self, topic: str):
        def record(event) -> None:
            self._event_seq += 1
            self._events.append(
                {"seq": self._event_seq, "topic": topic, **asdict(event)}
            )
            if len(self._events) > EVENT_RING:
                del self._events[: len(self._events) - EVENT_RING]
        return record

    # ---- lifecycle -----------------------------------------------------------

    async def run(self) -> int:
        """Serve until drained; returns the process exit code (3)."""
        loop = asyncio.get_running_loop()
        self._kick = asyncio.Event()
        self._stopping = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, self.drain, signal.Signals(signum).name.lower()
                )
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-main thread / platform without loop signals

        server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        endpoint = Path(self.store.root) / "endpoint.json"
        endpoint.write_text(json.dumps(
            {"host": self.host, "port": self.port, "epoch": self.store.epoch}
        ) + "\n")

        if self.queues.total():
            self._kick.set()
        worker = asyncio.create_task(self._worker())
        await self._stopping.wait()
        await worker
        server.close()
        await server.wait_closed()
        self._executor.shutdown(wait=True)
        # Durability barrier last: every record of this epoch (including
        # terminal records of jobs that finished during the drain) is on
        # stable storage before the process exits.
        self.store.flush_for_drain()
        self.store.close()
        return 3

    def drain(self, reason: str = "sigterm") -> None:
        """Begin a graceful drain (idempotent; callable from the loop only)."""
        if self.draining:
            return
        self.draining = True
        self.drain_reason = reason
        pending = self.queues.total() + (1 if self._running else 0)
        self.bus.emit("serve_drain", ServeDrainEvent(
            pending=pending, reason=reason,
        ))
        if self._running is not None:
            self._running[1].set()
        if self._kick is not None:
            self._kick.set()
        if self._stopping is not None:
            self._stopping.set()

    # ---- the job worker ------------------------------------------------------

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while not self.draining:
            spec = self.queues.next_job()
            if spec is None:
                self._kick.clear()
                if self.draining:
                    break
                await self._kick.wait()
                continue
            await self._run_job(loop, spec)

    async def _run_job(self, loop: asyncio.AbstractEventLoop,
                       spec: JobSpec) -> None:
        resumed = spec.job in self.store.span_roots or (
            spec.verb == "check" and self.store.job_journal(spec.job).exists()
        )
        cancel = threading.Event()
        self._running = (spec, cancel)
        if self.draining:
            # Drain raced the dispatch: leave the job journalled-pending.
            cancel.set()
        self.bus.emit("job_started", JobStartedEvent(
            job=spec.job, tenant=spec.tenant, verb=spec.verb, resumed=resumed,
        ))

        tracer = None
        if spec.verb == "check":
            # Root span chain survives restarts: epoch N's job root parents
            # onto the root recorded by epoch N-1, ids offset per epoch.
            tracer = SpanTracer(
                id_base=self.store.span_id_base(),
                remote_parent=self.store.span_roots.get(spec.job),
            )
            root = tracer.begin(
                f"serve:job:{spec.job}", epoch=self.store.epoch,
                tenant=spec.tenant, verb=spec.verb, resumed=resumed,
            )
            self.store.record_span_root(spec.job, root.trace_id, root.span_id)
            tracer.remote_parent = (root.trace_id, root.span_id)

        outcome = await loop.run_in_executor(
            self._executor, execute_job, spec, self.store, cancel, tracer,
            self.counters_snapshot(),
        )
        self._running = None

        if tracer is not None:
            if outcome.status == "done":
                tracer.end(root)
            # aborted/failed: the open root exports with an aborted status.
            tracer.write(self.store.spans_path(spec.job))
        if outcome.status == "aborted":
            self.counters["aborted"] += 1
        else:
            self.store.record_done(spec.job, outcome.status, outcome.detail)
            self.counters[outcome.status] += 1
        self.bus.emit("job_done", JobDoneEvent(
            job=spec.job, tenant=spec.tenant, status=outcome.status,
            duration_s=outcome.duration_s,
        ))

    # ---- state snapshots -----------------------------------------------------

    def counters_snapshot(self) -> dict:
        return {
            **self.counters,
            "epoch": self.store.epoch,
            "queue_high_water": self.queues.high_water,
            "queued": self.queues.total(),
        }

    def job_state(self, job: str) -> str | None:
        if job in self.store.terminal:
            return self.store.terminal[job]
        if self._running is not None and self._running[0].job == job:
            return "running"
        if job in self.store.admitted:
            return "queued"
        return None

    def retry_after_s(self) -> float:
        load = self.queues.total() + (1 if self._running else 0)
        return max(1.0, min(60.0, RETRY_AFTER_PER_JOB_S * (load + 1)))

    # ---- HTTP ----------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request = await read_request(reader)
                if request is None:
                    return
                raw = self._route(request)
            except BadRequest as exc:
                raw = self._error(400, str(exc))
            except ServeRejected as exc:
                raw = self._rejected(exc)
            except Exception as exc:  # noqa: BLE001 - a handler bug must not
                # take down jobs that are mid-campaign
                raw = self._error(500, f"{type(exc).__name__}: {exc}")
            await send_response(writer, raw)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    def _envelope_bytes(self, status: int, kind: str, data: dict,
                        extra_headers: dict[str, str] | None = None) -> bytes:
        body = json.dumps(
            envelope(kind, data, schema=SERVE_SCHEMA_VERSION),
            separators=(",", ":"), default=str,
        ).encode() + b"\n"
        return response_bytes(status, body, extra_headers=extra_headers)

    def _error(self, status: int, message: str) -> bytes:
        return self._envelope_bytes(status, "serve-error", {"error": message})

    def _rejected(self, exc: ServeRejected) -> bytes:
        self.counters["rejected"] += 1
        return self._envelope_bytes(
            429, "serve-rejected",
            {"reason": exc.reason, "retry_after_s": exc.retry_after_s},
            extra_headers={"Retry-After": str(int(exc.retry_after_s + 0.999))},
        )

    def _route(self, request: Request) -> bytes:
        path, method = request.path, request.method
        if path == "/v1/ping" and method == "GET":
            return self._envelope_bytes(200, "serve-ping", {
                "ok": True, "epoch": self.store.epoch,
                "draining": self.draining,
            })
        if path == "/v1/status" and method == "GET":
            return self._envelope_bytes(200, "serve-status", self._status())
        if path == "/v1/jobs" and method == "POST":
            return self._submit(request)
        if path == "/v1/events" and method == "GET":
            return self._events_body(request)
        if path == "/v1/drain" and method == "POST":
            pending = self.queues.total() + (1 if self._running else 0)
            self.drain(reason="request")
            return self._envelope_bytes(202, "serve-drain", {
                "draining": True, "pending": pending,
            })
        if path.startswith("/v1/jobs/") and method == "GET":
            return self._job_get(path[len("/v1/jobs/"):])
        return self._error(
            404 if method in ("GET", "POST") else 405,
            f"no route for {method} {path}",
        )

    def _status(self) -> dict:
        running = self._running[0].job if self._running else None
        return {
            "epoch": self.store.epoch,
            "draining": self.draining,
            "running": running,
            "queues": {
                tenant: self.queues.depth(tenant)
                for tenant in self.queues.tenants()
            },
            "counters": self.counters_snapshot(),
        }

    def _submit(self, request: Request) -> bytes:
        if self.draining:
            exc = ServeRejected("draining", self.retry_after_s())
            self.bus.emit("job_rejected", JobRejectedEvent(
                tenant="", verb="", reason=exc.reason,
                retry_after_s=exc.retry_after_s,
            ))
            raise exc
        payload = json_body(request)
        verb = payload.get("verb")
        if verb not in VERBS:
            raise BadRequest(f"verb must be one of {list(VERBS)}, got {verb!r}")
        tenant = str(payload.get("tenant") or "default")[:64]
        params = payload.get("params") or {}
        if not isinstance(params, dict):
            raise BadRequest("params must be a JSON object")
        try:
            self.queues.check(tenant, self.retry_after_s())
        except ServeRejected as exc:
            self.bus.emit("job_rejected", JobRejectedEvent(
                tenant=tenant, verb=verb, reason=exc.reason,
                retry_after_s=exc.retry_after_s,
            ))
            raise
        seq = self.store.claim_seq()
        spec = JobSpec(
            job=f"job-{seq:06d}", tenant=tenant, verb=verb,
            params=params, seq=seq,
        )
        # Durable before acknowledged: journal first (fsync per record),
        # then enqueue, then 202.
        self.store.record_job(spec)
        depth = self.queues.requeue(spec)
        self.counters["submitted"] += 1
        self.bus.emit("job_submitted", JobSubmittedEvent(
            job=spec.job, tenant=tenant, verb=verb, depth=depth,
        ))
        self._kick.set()
        return self._envelope_bytes(202, "serve-job", {
            "job": spec.job, "tenant": tenant, "verb": verb, "depth": depth,
        })

    def _job_get(self, rest: str) -> bytes:
        job, _, artifact = rest.partition("/")
        state = self.job_state(job)
        if state is None:
            return self._error(404, f"unknown job {job!r}")
        if artifact == "":
            spec = self.store.admitted.get(job)
            return self._envelope_bytes(200, "serve-job-status", {
                "job": job,
                "state": state,
                "tenant": spec.tenant if spec else None,
                "verb": spec.verb if spec else None,
                "resumed": job in self.store.span_roots
                and self.store.epoch > 1,
            })
        if artifact == "report":
            raw = self.store.read_report(job)
            if raw is None:
                return self._error(404, f"job {job!r} has no report yet "
                                        f"(state: {state})")
            return response_bytes(200, raw)
        if artifact == "runner":
            raw = self.store.read_runner(job)
            if raw is None:
                return self._error(404, f"job {job!r} has no runner report "
                                        f"yet (state: {state})")
            return response_bytes(200, raw)
        return self._error(404, f"unknown job artifact {artifact!r}")

    def _events_body(self, request: Request) -> bytes:
        topic = request.query.get("topic")
        try:
            since = int(request.query.get("since", "0"))
        except ValueError as exc:
            raise BadRequest("since must be an integer") from exc
        lines = [
            json.dumps(record, separators=(",", ":"), default=str)
            for record in self._events
            if record["seq"] > since and (topic is None or record["topic"] == topic)
        ]
        body = ("\n".join(lines) + "\n").encode() if lines else b""
        return response_bytes(200, body, content_type="application/x-ndjson")

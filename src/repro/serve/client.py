"""Stdlib client for the simulation service (tests, CI, scripting).

A thin wrapper over :mod:`http.client` speaking the ``repro.serve/1``
envelope protocol.  Every method opens one connection per request —
matching the server's ``Connection: close`` policy — and raises:

- :class:`~repro.errors.ServeRejected` on 429 (carrying the server's
  ``Retry-After`` hint), so callers can implement polite back-off;
- :class:`~repro.errors.ServeError` on transport failures and other
  non-2xx answers.

Polite back-off is built in: pass a :class:`SubmitRetry` policy to
:meth:`ServeClient.submit` and 429s are retried honoring the server's
``Retry-After`` — capped, jittered (so a burst of rejected clients does not
re-arrive in lockstep), and bounded by both an attempt count and a
wall-clock budget.  The server's hint is load-proportional, so the cadence
of a retrying client automatically tracks service pressure.

:func:`read_endpoint` pairs with the ``endpoint.json`` file the server
writes into its journal directory after binding, so harnesses that start
the server with ``--port 0`` discover the real port without parsing logs.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ServeError, ServeRejected

__all__ = ["ServeClient", "SubmitRetry", "read_endpoint"]


@dataclass(frozen=True)
class SubmitRetry:
    """Back-off policy for 429-rejected submissions.

    The server's ``Retry-After`` is the base delay; :attr:`cap_s` bounds it
    (a client should not sleep a minute because the hint says so),
    :attr:`jitter` spreads synchronized rejects apart, and the retry stops
    at whichever of :attr:`max_attempts` / :attr:`budget_s` trips first —
    re-raising the final :class:`~repro.errors.ServeRejected` so callers
    still see the server's reason.
    """

    #: Total wall-clock the submission may spend retrying.
    budget_s: float = 30.0
    #: Total attempts (1 = no retries).
    max_attempts: int = 6
    #: Ceiling on any single sleep, whatever Retry-After suggests.
    cap_s: float = 5.0
    #: Sleep is scaled by ``uniform(1 - jitter, 1 + jitter)``.
    jitter: float = 0.25

    def delay_s(self, retry_after_s: float, rng: random.Random) -> float:
        base = min(self.cap_s, max(0.0, retry_after_s))
        return base * rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)


def read_endpoint(journal_dir: str | Path, timeout_s: float = 10.0,
                  min_epoch: int = 0) -> tuple[str, int]:
    """Poll ``<journal_dir>/endpoint.json`` until the server has bound.

    *min_epoch* guards restart races: a harness restarting the server can
    demand an endpoint written by the new epoch, not the stale file of the
    killed one.
    """
    target = Path(journal_dir) / "endpoint.json"
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if target.exists():
            try:
                doc = json.loads(target.read_text())
                if doc.get("epoch", 0) >= min_epoch:
                    return doc["host"], int(doc["port"])
            except (ValueError, KeyError):
                pass  # torn read; the server rewrites it momentarily
        time.sleep(0.05)
    raise ServeError(f"no serve endpoint appeared in {journal_dir}")


class ServeClient:
    """One service endpoint; stateless between calls."""

    def __init__(self, host: str, port: int, timeout_s: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    # ---- transport -----------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: dict | None = None) -> tuple[int, dict[str, str], bytes]:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            resp_headers = {k.lower(): v for k, v in response.getheaders()}
            return response.status, resp_headers, raw
        except (ConnectionError, OSError, http.client.HTTPException) as exc:
            raise ServeError(
                f"serve request {method} {path} failed: {exc}"
            ) from exc
        finally:
            conn.close()

    def _json(self, method: str, path: str,
              payload: dict | None = None) -> dict:
        status, headers, raw = self._request(method, path, payload)
        if status == 429:
            doc = self._decode(raw)
            data = doc.get("data", {})
            retry_after = float(
                data.get("retry_after_s", headers.get("retry-after", 1.0))
            )
            raise ServeRejected(data.get("reason", "queue_full"), retry_after)
        doc = self._decode(raw)
        if status >= 400:
            detail = doc.get("data", {}).get("error") or repr(raw[:200])
            raise ServeError(f"{method} {path} -> {status}: {detail}")
        return doc

    @staticmethod
    def _decode(raw: bytes) -> dict:
        try:
            doc = json.loads(raw)
        except ValueError as exc:
            raise ServeError(f"undecodable serve response: {raw[:200]!r}") from exc
        if not isinstance(doc, dict):
            raise ServeError(f"unexpected serve response shape: {doc!r}")
        return doc

    # ---- API -----------------------------------------------------------------

    def ping(self) -> dict:
        return self._json("GET", "/v1/ping")["data"]

    def status(self) -> dict:
        return self._json("GET", "/v1/status")["data"]

    def submit(self, verb: str, params: dict, tenant: str = "default",
               retry: SubmitRetry | None = None,
               rng: random.Random | None = None) -> str:
        """Submit a job; returns its id.

        Without *retry*, a 429 raises :class:`ServeRejected` immediately.
        With one, rejected submissions back off per the policy (honoring
        the server's ``Retry-After``) and the last rejection is re-raised
        once the attempt count or wall-clock budget is exhausted.  *rng*
        pins the jitter for deterministic tests.
        """
        if retry is None:
            doc = self._json("POST", "/v1/jobs", {
                "verb": verb, "tenant": tenant, "params": params,
            })
            return doc["data"]["job"]
        rng = rng or random.Random()
        deadline = time.monotonic() + retry.budget_s
        attempt = 0
        while True:
            attempt += 1
            try:
                return self.submit(verb, params, tenant)
            except ServeRejected as exc:
                if attempt >= retry.max_attempts:
                    raise
                delay = retry.delay_s(exc.retry_after_s, rng)
                if time.monotonic() + delay > deadline:
                    raise
                time.sleep(delay)

    def job(self, job: str) -> dict:
        return self._json("GET", f"/v1/jobs/{job}")["data"]

    def report_bytes(self, job: str) -> bytes:
        """The job's final report, byte-for-byte as stored (404 raises)."""
        status, _headers, raw = self._request("GET", f"/v1/jobs/{job}/report")
        if status != 200:
            raise ServeError(f"job {job} report unavailable (HTTP {status})")
        return raw

    def runner_doc(self, job: str) -> dict:
        status, _headers, raw = self._request("GET", f"/v1/jobs/{job}/runner")
        if status != 200:
            raise ServeError(f"job {job} runner report unavailable "
                             f"(HTTP {status})")
        return json.loads(raw)

    def events(self, topic: str | None = None, since: int = 0) -> list[dict]:
        return self.events_with_meta(topic, since)[0]

    def events_with_meta(self, topic: str | None = None,
                         since: int = 0) -> tuple[list[dict], dict]:
        """Events plus the ring's loss metadata from the response headers.

        The meta dict carries ``dropped`` (events trimmed from the ring
        since the server started) and ``oldest_seq`` (the oldest retained
        seq) — a consumer whose cursor is older than ``oldest_seq - 1`` has
        a gap and should resync from status counters.
        """
        path = f"/v1/events?since={since}"
        if topic is not None:
            path += f"&topic={topic}"
        status, headers, raw = self._request("GET", path)
        if status != 200:
            raise ServeError(f"events unavailable (HTTP {status})")
        meta = {
            "dropped": int(headers.get("x-repro-events-dropped", 0)),
            "oldest_seq": int(headers.get("x-repro-events-oldest-seq", 0)),
        }
        return [json.loads(line) for line in raw.splitlines() if line], meta

    def drain(self) -> dict:
        return self._json("POST", "/v1/drain")["data"]

    def wait(self, job: str, timeout_s: float = 120.0,
             poll_s: float = 0.1) -> str:
        """Poll until *job* is terminal; returns its final state."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            state = self.job(job)["state"]
            if state in ("done", "failed"):
                return state
            time.sleep(poll_s)
        raise ServeError(f"job {job} still {state!r} after {timeout_s}s")

"""Stdlib client for the simulation service (tests, CI, scripting).

A thin wrapper over :mod:`http.client` speaking the ``repro.serve/1``
envelope protocol.  Every method opens one connection per request —
matching the server's ``Connection: close`` policy — and raises:

- :class:`~repro.errors.ServeRejected` on 429 (carrying the server's
  ``Retry-After`` hint), so callers can implement polite back-off;
- :class:`~repro.errors.ServeError` on transport failures and other
  non-2xx answers.

:func:`read_endpoint` pairs with the ``endpoint.json`` file the server
writes into its journal directory after binding, so harnesses that start
the server with ``--port 0`` discover the real port without parsing logs.
"""

from __future__ import annotations

import http.client
import json
import time
from pathlib import Path

from repro.errors import ServeError, ServeRejected

__all__ = ["ServeClient", "read_endpoint"]


def read_endpoint(journal_dir: str | Path, timeout_s: float = 10.0,
                  min_epoch: int = 0) -> tuple[str, int]:
    """Poll ``<journal_dir>/endpoint.json`` until the server has bound.

    *min_epoch* guards restart races: a harness restarting the server can
    demand an endpoint written by the new epoch, not the stale file of the
    killed one.
    """
    target = Path(journal_dir) / "endpoint.json"
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if target.exists():
            try:
                doc = json.loads(target.read_text())
                if doc.get("epoch", 0) >= min_epoch:
                    return doc["host"], int(doc["port"])
            except (ValueError, KeyError):
                pass  # torn read; the server rewrites it momentarily
        time.sleep(0.05)
    raise ServeError(f"no serve endpoint appeared in {journal_dir}")


class ServeClient:
    """One service endpoint; stateless between calls."""

    def __init__(self, host: str, port: int, timeout_s: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    # ---- transport -----------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: dict | None = None) -> tuple[int, dict[str, str], bytes]:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            resp_headers = {k.lower(): v for k, v in response.getheaders()}
            return response.status, resp_headers, raw
        except (ConnectionError, OSError, http.client.HTTPException) as exc:
            raise ServeError(
                f"serve request {method} {path} failed: {exc}"
            ) from exc
        finally:
            conn.close()

    def _json(self, method: str, path: str,
              payload: dict | None = None) -> dict:
        status, headers, raw = self._request(method, path, payload)
        if status == 429:
            doc = self._decode(raw)
            data = doc.get("data", {})
            retry_after = float(
                data.get("retry_after_s", headers.get("retry-after", 1.0))
            )
            raise ServeRejected(data.get("reason", "queue_full"), retry_after)
        doc = self._decode(raw)
        if status >= 400:
            detail = doc.get("data", {}).get("error") or repr(raw[:200])
            raise ServeError(f"{method} {path} -> {status}: {detail}")
        return doc

    @staticmethod
    def _decode(raw: bytes) -> dict:
        try:
            doc = json.loads(raw)
        except ValueError as exc:
            raise ServeError(f"undecodable serve response: {raw[:200]!r}") from exc
        if not isinstance(doc, dict):
            raise ServeError(f"unexpected serve response shape: {doc!r}")
        return doc

    # ---- API -----------------------------------------------------------------

    def ping(self) -> dict:
        return self._json("GET", "/v1/ping")["data"]

    def status(self) -> dict:
        return self._json("GET", "/v1/status")["data"]

    def submit(self, verb: str, params: dict, tenant: str = "default") -> str:
        """Submit a job; returns its id (raises :class:`ServeRejected`)."""
        doc = self._json("POST", "/v1/jobs", {
            "verb": verb, "tenant": tenant, "params": params,
        })
        return doc["data"]["job"]

    def job(self, job: str) -> dict:
        return self._json("GET", f"/v1/jobs/{job}")["data"]

    def report_bytes(self, job: str) -> bytes:
        """The job's final report, byte-for-byte as stored (404 raises)."""
        status, _headers, raw = self._request("GET", f"/v1/jobs/{job}/report")
        if status != 200:
            raise ServeError(f"job {job} report unavailable (HTTP {status})")
        return raw

    def runner_doc(self, job: str) -> dict:
        status, _headers, raw = self._request("GET", f"/v1/jobs/{job}/runner")
        if status != 200:
            raise ServeError(f"job {job} runner report unavailable "
                             f"(HTTP {status})")
        return json.loads(raw)

    def events(self, topic: str | None = None, since: int = 0) -> list[dict]:
        path = f"/v1/events?since={since}"
        if topic is not None:
            path += f"&topic={topic}"
        status, _headers, raw = self._request("GET", path)
        if status != 200:
            raise ServeError(f"events unavailable (HTTP {status})")
        return [json.loads(line) for line in raw.splitlines() if line]

    def drain(self) -> dict:
        return self._json("POST", "/v1/drain")["data"]

    def wait(self, job: str, timeout_s: float = 120.0,
             poll_s: float = 0.1) -> str:
        """Poll until *job* is terminal; returns its final state."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            state = self.job(job)["state"]
            if state in ("done", "failed"):
                return state
            time.sleep(poll_s)
        raise ServeError(f"job {job} still {state!r} after {timeout_s}s")

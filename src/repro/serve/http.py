"""A deliberately small HTTP/1.1 layer on asyncio streams.

The service speaks exactly as much HTTP as ``http.client`` and ``curl``
need: request line + headers + optional ``Content-Length`` body in,
``Connection: close`` responses out, one request per connection.  No
dependency beyond the standard library, no chunked encoding, no keep-alive
state machine — every simplification here is one less thing a crash can
leave half-done.

Hard input bounds (header block 16 KiB, body 1 MiB) keep a misbehaving
client from ballooning server memory; they are admission control's
transport-level sibling.

The ``mid-response`` chaos kill point fires between the two halves of a
response write, so the crash-recovery tests can prove a client seeing a
torn response still finds consistent server state after restart.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit

from repro.runner.chaos import kill_point

__all__ = ["Request", "json_body", "read_request", "response_bytes",
           "send_response"]

MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 1024 * 1024

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass(slots=True)
class Request:
    """One parsed request; ``None`` fields never occur on a valid parse."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""


class BadRequest(ValueError):
    """Unparsable or over-limit request; the caller answers 400/413."""


def json_body(request: Request) -> dict:
    """The request body as a JSON object (raises :class:`BadRequest`)."""
    if not request.body:
        return {}
    try:
        payload = json.loads(request.body)
    except ValueError as exc:
        raise BadRequest(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise BadRequest("request body must be a JSON object")
    return payload


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request; ``None`` when the client closed without sending."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise BadRequest("connection closed mid-headers") from exc
    except asyncio.LimitOverrunError as exc:
        raise BadRequest("header block exceeds limit") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise BadRequest("header block exceeds limit")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise BadRequest(f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    split = urlsplit(target)
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise BadRequest(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            size = int(length)
        except ValueError as exc:
            raise BadRequest("malformed Content-Length") from exc
        if size > MAX_BODY_BYTES:
            raise BadRequest("body exceeds limit")
        if size:
            body = await reader.readexactly(size)
    return Request(
        method=method.upper(),
        path=split.path,
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
    )


def response_bytes(status: int, body: bytes,
                   content_type: str = "application/json",
                   extra_headers: dict[str, str] | None = None) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    head_lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        head_lines.append(f"{name}: {value}")
    head = ("\r\n".join(head_lines) + "\r\n\r\n").encode("latin-1")
    return head + body


async def send_response(writer: asyncio.StreamWriter, raw: bytes) -> None:
    """Write a full response in two flushed halves around the kill point.

    Clients always know whether a response was complete: ``Content-Length``
    is in the first half, so a crash at the kill point yields a short read,
    never a silently truncated-but-plausible document.
    """
    half = max(1, len(raw) // 2)
    writer.write(raw[:half])
    await writer.drain()
    kill_point("mid-response")
    writer.write(raw[half:])
    await writer.drain()

"""Job specifications and executors for the simulation service.

A job is a persisted request to run one repro workload.  Two verbs:

``check``
    A fault campaign (the parallel ``repro check`` harness) on the service's
    job worker, journalled per job — the service can be SIGKILLed mid-run
    and the resumed job merges byte-identical to a serial ``repro check``
    with the same parameters.  The report on disk is byte-for-byte the
    document ``repro check --json`` writes.

``profile``
    One kernel's ``kernel-profile`` document.  Pure and fast, so it carries
    no journal: a job interrupted by a crash simply re-runs from scratch on
    the next epoch.

Executors run on the service's worker thread (not the asyncio loop), so
cancellation rides :attr:`repro.runner.RunnerConfig.cancel_event` rather
than signals: the drain path sets the event from the loop thread and the
runner stops at its next task boundary with the journal flushed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from threading import Event

from repro.errors import ServeError
from repro.resilience import ResilienceMode

__all__ = ["JobSpec", "JobOutcome", "VERBS", "execute_job"]

VERBS = ("check", "profile")


@dataclass(frozen=True, slots=True)
class JobSpec:
    """One admitted job; exactly what the serve journal persists."""

    job: str
    tenant: str
    verb: str
    params: dict = field(default_factory=dict)
    #: Monotonic admission sequence number (also the id suffix); restart
    #: recovery re-enqueues pending jobs in this order.
    seq: int = 0

    def as_record(self) -> dict:
        return {
            "type": "job",
            "job": self.job,
            "tenant": self.tenant,
            "verb": self.verb,
            "params": dict(self.params),
            "seq": self.seq,
        }

    @classmethod
    def from_record(cls, record: dict) -> "JobSpec":
        try:
            return cls(
                job=record["job"],
                tenant=record["tenant"],
                verb=record["verb"],
                params=dict(record.get("params") or {}),
                seq=int(record.get("seq", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServeError(f"malformed persisted job record: {record!r}") from exc


@dataclass(slots=True)
class JobOutcome:
    """What one execution attempt produced."""

    #: ``"done"``, ``"failed"`` or ``"aborted"`` (cancelled by a drain —
    #: the job stays pending in the journal and resumes next epoch).
    status: str
    detail: str = ""
    duration_s: float = 0.0


def _check_params(params: dict) -> dict:
    """Normalized keyword arguments for the ``check`` executors."""
    kernels = params.get("kernels") or ()
    return {
        "kernels": tuple(kernels),
        "faults": int(params.get("faults", 0)),
        "seed": int(params.get("seed", 0)),
        "fast": bool(params.get("fast", False)),
        "resilience": ResilienceMode.parse(params.get("mode", "degrade")),
    }


def execute_job(spec: JobSpec, store, cancel: Event,
                tracer=None, serve_counters: dict | None = None) -> JobOutcome:
    """Run one job to a terminal (or aborted) state; writes its artifacts.

    Imports live inside the function: the serve package must import without
    dragging the kernel registry (and numpy workloads) into processes that
    only parse journals or build clients.
    """
    started = time.perf_counter()
    try:
        if spec.verb == "check":
            outcome = _execute_check(spec, store, cancel, tracer, serve_counters)
        elif spec.verb == "profile":
            outcome = _execute_profile(spec, store)
        else:
            outcome = JobOutcome("failed", f"unknown verb {spec.verb!r}")
    except Exception as exc:  # noqa: BLE001 - job isolation: report, don't die
        outcome = JobOutcome("failed", f"{type(exc).__name__}: {exc}")
    outcome.duration_s = time.perf_counter() - started
    return outcome


def _execute_check(spec: JobSpec, store, cancel: Event,
                   tracer, serve_counters: dict | None) -> JobOutcome:
    from repro.errors import RunnerInterrupted
    from repro.faults import run_check_parallel
    from repro.faults.report import check_report
    from repro.runner import RunnerConfig, runner_report

    kwargs = _check_params(spec.params)
    config = RunnerConfig(jobs=1, cancel_event=cancel)
    try:
        result, runner = run_check_parallel(
            **kwargs,
            jobs=1,
            journal_path=store.job_journal(spec.job),
            runner_config=config,
            tracer=tracer,
        )
    except RunnerInterrupted:
        # Drain cancelled us mid-campaign.  The runner journal is flushed;
        # the job stays pending and the next epoch resumes it.
        return JobOutcome("aborted", "cancelled by drain; journal flushed")
    store.write_report(spec.job, check_report(result))
    store.write_runner(spec.job, runner_report(runner, serve=serve_counters))
    return JobOutcome("done")


def _execute_profile(spec: JobSpec, store) -> JobOutcome:
    from repro.kernels import make_kernel
    from repro.obs.export import kernel_profile_report, resolve_kernel_name

    name = resolve_kernel_name(str(spec.params.get("kernel", "")))
    store.write_report(spec.job, kernel_profile_report(make_kernel(name)))
    return JobOutcome("done")

"""Job specifications and executors for the simulation service.

A job is a persisted request to run one repro workload.  Three verbs:

``check``
    A fault campaign (the parallel ``repro check`` harness) on a service
    job worker, journalled per job — the worker can be SIGKILLed mid-run
    and the resumed job merges byte-identical to a serial ``repro check``
    with the same parameters.  The report on disk is byte-for-byte the
    document ``repro check --json`` writes.  ``jobs`` from the service
    configuration sizes the campaign's own worker pool; when that pool
    misbehaves (fails to start, trips a breaker, loses tasks) the executor
    **degrades instead of failing**: the campaign re-runs serially against
    the same resume journal — completed injections are cached there, so
    only the casualties re-execute — and the degradation is recorded in the
    runner report and the job outcome, never silent.

``profile``
    One kernel's ``kernel-profile`` document.  Pure and fast, so it carries
    no journal: a job interrupted by a crash simply re-runs from scratch on
    the next epoch.

``probe``
    A synthetic latency job: sleep for ``duration_s``, write a tiny
    deterministic report.  Scheduling, supervision and the concurrency
    benchmark use it to exercise the service's dispatch path without
    paying for a simulation — probe jobs overlap even on one CPU, so the
    measured speedup isolates *orchestration* concurrency from hardware
    parallelism.

Executors run in supervised child processes (:mod:`repro.serve.workers`),
so cancellation rides a multiprocessing event rather than signals: the
drain path sets the event from the service loop and the runner stops at
its next task boundary with the journal flushed.  Executors receive a
:class:`~repro.serve.store.JobPaths` (not the full store): children write
artifacts but never touch the parent's serve journal.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import ServeError
from repro.resilience import ResilienceMode

__all__ = ["JobSpec", "JobOutcome", "VERBS", "execute_job"]

VERBS = ("check", "profile", "probe")

#: Cancellation poll period of the probe executor's sleep loop.
PROBE_SLICE_S = 0.05


@dataclass(frozen=True, slots=True)
class JobSpec:
    """One admitted job; exactly what the serve journal persists."""

    job: str
    tenant: str
    verb: str
    params: dict = field(default_factory=dict)
    #: Monotonic admission sequence number (also the id suffix); restart
    #: recovery re-enqueues pending jobs in this order.
    seq: int = 0

    def as_record(self) -> dict:
        return {
            "type": "job",
            "job": self.job,
            "tenant": self.tenant,
            "verb": self.verb,
            "params": dict(self.params),
            "seq": self.seq,
        }

    @classmethod
    def from_record(cls, record: dict) -> "JobSpec":
        try:
            return cls(
                job=record["job"],
                tenant=record["tenant"],
                verb=record["verb"],
                params=dict(record.get("params") or {}),
                seq=int(record.get("seq", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServeError(f"malformed persisted job record: {record!r}") from exc


@dataclass(slots=True)
class JobOutcome:
    """What one execution attempt produced."""

    #: ``"done"``, ``"failed"`` or ``"aborted"`` (cancelled by a drain —
    #: the job stays pending in the journal and resumes next epoch).
    status: str
    detail: str = ""
    duration_s: float = 0.0
    #: The job finished, but not on the configured parallel path: its
    #: campaign pool broke and a serial (re-)run produced the result.
    degraded: bool = False
    #: ``"pool_breaker"`` / ``"pool_start"`` when :attr:`degraded`.
    degrade_reason: str = ""


def _check_params(params: dict) -> dict:
    """Normalized keyword arguments for the ``check`` executors."""
    kernels = params.get("kernels") or ()
    return {
        "kernels": tuple(kernels),
        "faults": int(params.get("faults", 0)),
        "seed": int(params.get("seed", 0)),
        "fast": bool(params.get("fast", False)),
        "resilience": ResilienceMode.parse(params.get("mode", "degrade")),
    }


def execute_job(spec: JobSpec, paths, cancel,
                tracer=None, serve_counters: dict | None = None,
                jobs: int = 1) -> JobOutcome:
    """Run one job to a terminal (or aborted) state; writes its artifacts.

    *cancel* is any event-shaped object (``is_set()``) — a multiprocessing
    event under the service, a plain :class:`threading.Event` in tests.
    *jobs* sizes a check campaign's worker pool.  Imports live inside the
    executors: the serve package must import without dragging the kernel
    registry (and numpy workloads) into processes that only parse journals
    or build clients.
    """
    started = time.perf_counter()
    try:
        if spec.verb == "check":
            outcome = _execute_check(
                spec, paths, cancel, tracer, serve_counters, jobs
            )
        elif spec.verb == "profile":
            outcome = _execute_profile(spec, paths)
        elif spec.verb == "probe":
            outcome = _execute_probe(spec, paths, cancel)
        else:
            outcome = JobOutcome("failed", f"unknown verb {spec.verb!r}")
    except Exception as exc:  # noqa: BLE001 - job isolation: report, don't die
        outcome = JobOutcome("failed", f"{type(exc).__name__}: {exc}")
    outcome.duration_s = time.perf_counter() - started
    return outcome


def _pool_damage(runner) -> str:
    """Why this campaign's parallel run cannot stand as the final result
    (empty string = it can)."""
    if runner.stats.breaker_trips:
        return (
            f"breaker opened on {', '.join(runner.breaker.open_slices)}"
        )
    casualties = sorted(
        result.task for result in runner.results.values() if not result.ok
    )
    if casualties:
        preview = ", ".join(casualties[:4])
        if len(casualties) > 4:
            preview += f", ... ({len(casualties)} total)"
        return f"tasks not ok after pooled run: {preview}"
    return ""


def _execute_check(spec: JobSpec, paths, cancel,
                   tracer, serve_counters: dict | None,
                   jobs: int) -> JobOutcome:
    from repro.errors import RunnerError, RunnerInterrupted
    from repro.faults import run_check_parallel
    from repro.faults.report import check_report
    from repro.runner import RunnerConfig, runner_report

    kwargs = _check_params(spec.params)
    journal_path = paths.job_journal(spec.job)
    use_jobs = max(1, jobs)
    config = RunnerConfig(jobs=use_jobs, cancel_event=cancel)

    degraded = False
    degrade_reason = ""
    degrade_detail = ""
    try:
        result, runner = run_check_parallel(
            **kwargs,
            jobs=use_jobs,
            journal_path=journal_path,
            runner_config=config,
            tracer=tracer,
        )
    except RunnerInterrupted:
        # Drain cancelled us mid-campaign.  The runner journal is flushed;
        # the job stays pending and the next epoch resumes it.
        return JobOutcome("aborted", "cancelled by drain; journal flushed")
    except RunnerError as exc:
        if use_jobs <= 1:
            raise
        # A clean task died terminally on the pool — on this machine that
        # smells infrastructural, not simulational.  Serial gets one shot.
        degraded, degrade_reason, degrade_detail = (
            True, "pool_breaker", f"RunnerError: {exc}"
        )
        result = runner = None
    else:
        if runner.fallback_reason is not None:
            # The pool never started; the Runner already fell back to the
            # serial path internally.  Result stands, degradation recorded.
            degraded, degrade_reason = True, "pool_start"
            degrade_detail = runner.fallback_reason
        elif use_jobs > 1:
            damage = _pool_damage(runner)
            if damage:
                degraded, degrade_reason, degrade_detail = (
                    True, "pool_breaker", damage
                )
                result = runner = None

    if result is None:
        # Serial re-run against the same journal: completed injections are
        # cached there, so only the pooled run's casualties re-execute, and
        # the merge stays byte-identical to an all-serial campaign.
        try:
            result, runner = run_check_parallel(
                **kwargs,
                jobs=1,
                journal_path=journal_path,
                runner_config=RunnerConfig(jobs=1, cancel_event=cancel),
                tracer=tracer,
            )
        except RunnerInterrupted:
            return JobOutcome("aborted", "cancelled by drain; journal flushed")

    serve_doc = dict(serve_counters) if serve_counters else None
    if degraded and serve_doc is not None:
        serve_doc["degraded"] = {
            "reason": degrade_reason, "detail": degrade_detail,
        }
    paths.write_report(spec.job, check_report(result))
    paths.write_runner(spec.job, runner_report(runner, serve=serve_doc))
    return JobOutcome(
        "done",
        detail=degrade_detail if degraded else "",
        degraded=degraded,
        degrade_reason=degrade_reason,
    )


def _execute_profile(spec: JobSpec, paths) -> JobOutcome:
    from repro.kernels import make_kernel
    from repro.obs.export import kernel_profile_report, resolve_kernel_name

    name = resolve_kernel_name(str(spec.params.get("kernel", "")))
    paths.write_report(spec.job, kernel_profile_report(make_kernel(name)))
    return JobOutcome("done")


def _execute_probe(spec: JobSpec, paths, cancel) -> JobOutcome:
    from repro.obs.export import envelope

    duration = max(0.0, float(spec.params.get("duration_s", PROBE_SLICE_S)))
    deadline = time.perf_counter() + duration
    while True:
        remaining = deadline - time.perf_counter()
        if remaining <= 0:
            break
        if cancel.is_set():
            return JobOutcome("aborted", "cancelled by drain")
        time.sleep(min(PROBE_SLICE_S, remaining))
    if spec.params.get("fail"):
        return JobOutcome("failed", "probe requested failure")
    # Deterministic by construction (requested values only, no measured
    # wall clock): a probe report is byte-identical across epochs, worker
    # counts, and requeues.
    paths.write_report(spec.job, envelope("serve-probe", {
        "job": spec.job,
        "tenant": spec.tenant,
        "duration_s": duration,
    }))
    return JobOutcome("done")

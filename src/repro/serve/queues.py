"""Per-tenant bounded job queues: weighted fair dispatch, in-flight caps.

The service's memory is bounded by construction: at most ``max_tenants``
tenants, each with at most ``max_depth`` queued jobs.  A submission that
would exceed either bound is refused *at admission* with
:class:`~repro.errors.ServeRejected` (HTTP 429 + ``Retry-After``) rather
than accepted and shed later — the journal only ever records jobs the
service has genuinely committed to run.

Dispatch is **smooth weighted round-robin** (the interleaving nginx made
standard): every tenant carries an integer weight (default 1); on each
dispatch, every *eligible* tenant — non-empty queue, in-flight below its
cap — earns its weight in credit, the richest tenant (ties broken
lexicographically, so dispatch is deterministic) is served and pays the
total eligible weight back.  Two provable properties fall out:

* **proportional share** — over any ``W`` consecutive dispatches during
  which the eligible set is stable (``W`` = the set's total weight), tenant
  *t* is served exactly ``weight(t)`` times;
* **starvation bound** — a continuously eligible tenant waits at most
  ``2 * ceil(W / weight(t)) - 1`` dispatches between consecutive services.
  One noisy tenant cannot starve the others, it can only saturate its own
  slice — and a weight-10 tenant gets ten slices per cycle where a
  weight-1 tenant gets one.

``tests/serve/test_queues.py`` asserts both properties under seeded bursty
multi-tenant arrivals rather than trusting this comment.

**In-flight caps** bound how many of a tenant's jobs may run at once
(``max_inflight``; 0 = no cap): with more service workers than tenants, a
cap keeps one tenant from occupying every worker while others queue.
Tenants at their cap simply leave the eligible set — their credit does not
accrue, so a capped burst cannot bank priority for later.  Order within a
tenant is FIFO, so a single-tenant service degrades to a plain queue.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.errors import ServeRejected
from repro.serve.jobs import JobSpec

__all__ = ["TenantQueues"]


class TenantQueues:
    """Bounded FIFO queues keyed by tenant, drained smooth-weighted-RR."""

    def __init__(self, max_depth: int = 8, max_tenants: int = 16,
                 weights: dict[str, int] | None = None,
                 max_inflight: int = 0) -> None:
        self.max_depth = max(1, max_depth)
        self.max_tenants = max(1, max_tenants)
        #: Dispatch weight per tenant (missing tenants weigh 1).
        self.weights = {
            tenant: max(1, int(weight))
            for tenant, weight in (weights or {}).items()
        }
        #: Per-tenant cap on concurrently running jobs (0 = uncapped).
        self.max_inflight = max(0, max_inflight)
        self._queues: dict[str, deque[JobSpec]] = {}
        #: Smooth-WRR credit per tenant; entries vanish when a tenant's
        #: queue drains so a returning tenant cannot spend hoarded credit.
        self._credit: dict[str, int] = {}
        #: Jobs dispatched but not yet released (running on a worker).
        self._inflight: dict[str, int] = {}
        #: Most jobs ever simultaneously queued (all tenants), for telemetry.
        self.high_water = 0

    def weight(self, tenant: str) -> int:
        return self.weights.get(tenant, 1)

    # ---- admission -----------------------------------------------------------

    def check(self, tenant: str, retry_after_s: float) -> None:
        """Raise :class:`ServeRejected` unless *tenant* can queue one more.

        Split from :meth:`requeue` so the caller can claim a job id and
        journal the admission *between* the bound check and the append —
        rejected submissions never consume ids or journal space.
        """
        queue = self._queues.get(tenant)
        if queue is None:
            if len(self._queues) >= self.max_tenants:
                raise ServeRejected("queue_full", retry_after_s)
        elif len(queue) >= self.max_depth:
            raise ServeRejected("queue_full", retry_after_s)

    def requeue(self, spec: JobSpec) -> int:
        """Append without a bound check; returns the tenant's new depth.

        Used after :meth:`check` on the submission path, and directly for
        restart recovery: a recovered job was admitted under the bound by a
        previous epoch, so it re-enters unconditionally.
        """
        queue = self._queues.get(spec.tenant)
        if queue is None:
            queue = deque()
            self._queues[spec.tenant] = queue
        queue.append(spec)
        self.high_water = max(self.high_water, self.total())
        return len(queue)

    def requeue_front(self, spec: JobSpec) -> int:
        """Put a supervision-requeued job back at the *front* of its tenant
        queue: it is that tenant's oldest admitted work, and recovery order
        must match what a restart's journal fold would produce."""
        queue = self._queues.get(spec.tenant)
        if queue is None:
            queue = deque()
            self._queues[spec.tenant] = queue
        queue.appendleft(spec)
        self.high_water = max(self.high_water, self.total())
        return len(queue)

    def admit(self, spec: JobSpec, retry_after_s: float) -> int:
        """Accept *spec* or raise :class:`ServeRejected`; returns new depth."""
        self.check(spec.tenant, retry_after_s)
        return self.requeue(spec)

    # ---- dispatch ------------------------------------------------------------

    def _eligible(self) -> list[str]:
        return sorted(
            tenant for tenant, queue in self._queues.items()
            if queue and (
                self.max_inflight == 0
                or self._inflight.get(tenant, 0) < self.max_inflight
            )
        )

    def next_job(self) -> JobSpec | None:
        """Pop the next job by smooth weighted round-robin (None when no
        tenant is eligible).  The popped job counts against its tenant's
        in-flight cap until :meth:`release` is called for it."""
        eligible = self._eligible()
        if not eligible:
            return None
        total = sum(self.weight(tenant) for tenant in eligible)
        best = eligible[0]
        for tenant in eligible:
            credit = self._credit.get(tenant, 0) + self.weight(tenant)
            self._credit[tenant] = credit
            if credit > self._credit[best]:
                best = tenant
        self._credit[best] -= total
        queue = self._queues[best]
        spec = queue.popleft()
        if not queue:
            self._credit.pop(best, None)
        self._inflight[best] = self._inflight.get(best, 0) + 1
        return spec

    def release(self, tenant: str) -> None:
        """A dispatched job of *tenant* left its worker (done or requeued)."""
        count = self._inflight.get(tenant, 0)
        if count <= 1:
            self._inflight.pop(tenant, None)
        else:
            self._inflight[tenant] = count - 1

    # ---- introspection -------------------------------------------------------

    def depth(self, tenant: str) -> int:
        queue = self._queues.get(tenant)
        return len(queue) if queue else 0

    def inflight(self, tenant: str) -> int:
        return self._inflight.get(tenant, 0)

    def total(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def total_inflight(self) -> int:
        return sum(self._inflight.values())

    def tenants(self) -> list[str]:
        return sorted(set(self._queues) | set(self._inflight))

    def pending(self) -> Iterator[JobSpec]:
        """Every queued job, tenant-sorted then FIFO (for status reports)."""
        for tenant in sorted(self._queues):
            yield from self._queues[tenant]

"""Per-tenant bounded job queues with admission control.

The service's memory is bounded by construction: at most ``max_tenants``
tenants, each with at most ``max_depth`` queued jobs.  A submission that
would exceed either bound is refused *at admission* with
:class:`~repro.errors.ServeRejected` (HTTP 429 + ``Retry-After``) rather
than accepted and shed later — the journal only ever records jobs the
service has genuinely committed to run.

Dispatch is round-robin across tenants: one noisy tenant with a full queue
cannot starve the others, it can only saturate its own slice.  Order within
a tenant is FIFO, so a single-tenant service degrades to a plain queue.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.errors import ServeRejected
from repro.serve.jobs import JobSpec

__all__ = ["TenantQueues"]


class TenantQueues:
    """Bounded FIFO queues keyed by tenant, drained round-robin."""

    def __init__(self, max_depth: int = 8, max_tenants: int = 16) -> None:
        self.max_depth = max(1, max_depth)
        self.max_tenants = max(1, max_tenants)
        self._queues: dict[str, deque[JobSpec]] = {}
        #: Tenant rotation for round-robin dispatch (rotated on each pop).
        self._rotation: deque[str] = deque()
        #: Most jobs ever simultaneously queued (all tenants), for telemetry.
        self.high_water = 0

    # ---- admission -----------------------------------------------------------

    def check(self, tenant: str, retry_after_s: float) -> None:
        """Raise :class:`ServeRejected` unless *tenant* can queue one more.

        Split from :meth:`requeue` so the caller can claim a job id and
        journal the admission *between* the bound check and the append —
        rejected submissions never consume ids or journal space.
        """
        queue = self._queues.get(tenant)
        if queue is None:
            if len(self._queues) >= self.max_tenants:
                raise ServeRejected("queue_full", retry_after_s)
        elif len(queue) >= self.max_depth:
            raise ServeRejected("queue_full", retry_after_s)

    def requeue(self, spec: JobSpec) -> int:
        """Append without a bound check; returns the tenant's new depth.

        Used after :meth:`check` on the submission path, and directly for
        restart recovery: a recovered job was admitted under the bound by a
        previous epoch, so it re-enters unconditionally.
        """
        queue = self._queues.get(spec.tenant)
        if queue is None:
            queue = deque()
            self._queues[spec.tenant] = queue
            self._rotation.append(spec.tenant)
        queue.append(spec)
        self.high_water = max(self.high_water, self.total())
        return len(queue)

    def admit(self, spec: JobSpec, retry_after_s: float) -> int:
        """Accept *spec* or raise :class:`ServeRejected`; returns new depth."""
        self.check(spec.tenant, retry_after_s)
        return self.requeue(spec)

    # ---- dispatch ------------------------------------------------------------

    def next_job(self) -> JobSpec | None:
        """Pop the next job round-robin across tenants (None when empty)."""
        for _ in range(len(self._rotation)):
            tenant = self._rotation[0]
            self._rotation.rotate(-1)
            queue = self._queues.get(tenant)
            if queue:
                return queue.popleft()
        return None

    # ---- introspection -------------------------------------------------------

    def depth(self, tenant: str) -> int:
        queue = self._queues.get(tenant)
        return len(queue) if queue else 0

    def total(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def tenants(self) -> list[str]:
        return sorted(self._queues)

    def pending(self) -> Iterator[JobSpec]:
        """Every queued job, tenant-sorted then FIFO (for status reports)."""
        for tenant in self.tenants():
            yield from self._queues[tenant]

"""Durable job state for the simulation service.

Everything the service must not lose lives in one directory::

    <journal-dir>/
        serve.jsonl               service journal (admissions, terminals,
                                  attempts, epochs, span roots) — fsync per
                                  record
        jobs/<id>.journal.jsonl   per-job campaign runner journal
        jobs/<id>.report.json     final report (atomic: tmp+fsync+replace)
        jobs/<id>.runner.json     runner execution report
        jobs/<id>.spans.<N>.jsonl span export of epoch N's execution

The serve journal reuses the hardened :class:`repro.runner.Journal`
(CRC-per-record, O_APPEND atomic lines, truncated-tail tolerance) with
``fsync_every=1``: a job is admitted only once its record is on stable
storage, so an admission the client saw acknowledged survives any crash.

Restart recovery is a pure fold over the journal: admissions minus
terminals, in admission order, are the pending jobs of the new epoch.
Reports are written atomically to a separate file per job, so a reader can
never observe a half-written report and a crash mid-write leaves the
previous state intact.

Path mechanics live in :class:`JobPaths`, a journal-less base the job
worker *children* construct: a child writes reports and runner journals
under the same layout without ever opening ``serve.jsonl`` — the parent's
``fsync_every=1`` append stream stays single-writer.

**Compaction** (:meth:`ServeStore.compact`) bounds the journal: an
append-only log grows with every admission forever, so a long-lived
service folds its history into an equivalent snapshot — header, a
``snapshot`` record carrying ``next_seq`` (job ids must never be reissued,
even for pruned admissions) and the cumulative archive count, the current
epoch, the most recent terminal records (self-contained: tenant/verb/seq
ride on ``job_done`` so status endpoints answer without the pruned
admission), and every pending job's admission + attempt + span-root
records.  The swap is crash-safe by construction: write ``serve.jsonl.compact``,
fsync it, atomically rename over ``serve.jsonl``, fsync the directory.  A
crash before the rename leaves the old journal; a crash after leaves the
new one; both fold to the same pending set.  The chaos kill points
``compact-snapshot`` and ``compact-commit`` sit at exactly those two
instants so the recovery-equivalence tests can die there on purpose.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.obs.export import RUNNER_SCHEMA_VERSION
from repro.runner.chaos import kill_point
from repro.runner.journal import Journal, _encode_record, load_journal
from repro.serve.jobs import JobSpec

__all__ = ["JobPaths", "ServeStore"]

#: Fingerprint of every serve journal — a journal dir belongs to the
#: service, not to any single campaign.
SERVE_FINGERPRINT = {"verb": "serve"}

#: Span-id block reserved per epoch: epoch N's tracers allocate ids from
#: ``N * SPAN_ID_STRIDE``, so span files from different epochs of the same
#: job merge without id collisions.
SPAN_ID_STRIDE = 1_000_000

#: Terminal records a compaction keeps by default: enough recent history
#: for status queries, while the journal stays bounded no matter how many
#: jobs the service has ever finished.
DEFAULT_KEEP_TERMINAL = 64


class JobPaths:
    """The artifact layout of a journal dir, without the journal itself.

    Job worker children construct this (cheap, no fd, no recovery fold) to
    read specs and write reports; only the parent's :class:`ServeStore`
    owns the ``serve.jsonl`` append stream.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)

    # ---- artifact paths ------------------------------------------------------

    def job_journal(self, job: str) -> Path:
        return self.jobs_dir / f"{job}.journal.jsonl"

    def report_path(self, job: str) -> Path:
        return self.jobs_dir / f"{job}.report.json"

    def runner_path(self, job: str) -> Path:
        return self.jobs_dir / f"{job}.runner.json"

    def spans_path(self, job: str, epoch: int) -> Path:
        return self.jobs_dir / f"{job}.spans.{epoch}.jsonl"

    # ---- atomic artifact writes ----------------------------------------------

    def _atomic_write(self, target: Path, text: str) -> None:
        """tmp + fsync + rename: readers see the old file or the new one."""
        tmp = target.with_suffix(target.suffix + ".tmp")
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            os.write(fd, text.encode())
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, target)

    def _render_json(self, payload: dict) -> str:
        # Byte-for-byte the repro.obs.export.write_json format, so a serve
        # report diffs clean against the same campaign's CLI --json output.
        return json.dumps(payload, indent=2, sort_keys=False, default=str) + "\n"

    def write_report(self, job: str, payload: dict) -> None:
        self._atomic_write(self.report_path(job), self._render_json(payload))

    def write_runner(self, job: str, payload: dict) -> None:
        self._atomic_write(self.runner_path(job), self._render_json(payload))

    def read_report(self, job: str) -> bytes | None:
        path = self.report_path(job)
        return path.read_bytes() if path.exists() else None

    def read_runner(self, job: str) -> bytes | None:
        path = self.runner_path(job)
        return path.read_bytes() if path.exists() else None


class ServeStore(JobPaths):
    """The service's journal, artifact paths and restart recovery."""

    def __init__(self, root: str | Path) -> None:
        super().__init__(root)
        # A crash between writing the compaction snapshot and renaming it
        # leaves a stale temp file; it was never the live journal, drop it.
        self._compact_tmp.unlink(missing_ok=True)

        # Scan before Journal construction appends anything: the full record
        # list (not just completed tasks) is what recovery folds over.
        load = load_journal(self.root / "serve.jsonl")
        self.corrupt_records = load.corrupt

        self.epoch = 0
        self.next_seq = 1
        #: Terminal job_done records pruned by past compactions (cumulative).
        self.archived_terminals = 0
        done: dict[str, dict] = {}
        admitted: list[JobSpec] = []
        admitted_ids: set[str] = set()
        span_roots: dict[str, tuple[str, str]] = {}
        attempts: dict[str, int] = {}
        for record in load.records:
            kind = record.get("type")
            if kind == "epoch":
                self.epoch = max(self.epoch, int(record.get("epoch", 0)))
            elif kind == "snapshot":
                # A compaction pruned records before this point; the counter
                # state they carried rides on the snapshot instead.
                self.next_seq = max(self.next_seq, int(record.get("next_seq", 1)))
                self.archived_terminals = int(record.get("archived_terminals", 0))
            elif kind == "job":
                spec = JobSpec.from_record(record)
                admitted.append(spec)
                admitted_ids.add(spec.job)
                self.next_seq = max(self.next_seq, spec.seq + 1)
            elif kind == "job_done":
                job = record.get("job", "")
                done[job] = record
                if job and job not in admitted_ids:
                    # Compaction pruned this job's admission record; the
                    # terminal record is self-contained, rebuild from it.
                    admitted.append(JobSpec(
                        job=job,
                        tenant=record.get("tenant", ""),
                        verb=record.get("verb", ""),
                        params={},
                        seq=int(record.get("seq", 0)),
                    ))
                    admitted_ids.add(job)
            elif kind == "job_attempt":
                attempts[record.get("job", "")] = int(record.get("attempt", 0))
            elif kind == "job_span":
                span_roots[record.get("job", "")] = (
                    record.get("trace", ""), record.get("span", ""),
                )

        #: Jobs admitted by earlier epochs that never reached a terminal
        #: record — the new epoch re-enqueues them in admission order.
        self.recovered: list[JobSpec] = [
            spec for spec in admitted if spec.job not in done
        ]
        #: Terminal status by job id (``done``/``failed``), across epochs.
        self.terminal: dict[str, str] = {
            job: record.get("status", "done") for job, record in done.items()
        }
        #: Full terminal records (detail, degraded flag...) for status
        #: endpoints and for rewriting terminals through a compaction.
        self.terminal_records: dict[str, dict] = done
        #: All admissions ever, by id (status endpoints answer for old jobs).
        self.admitted: dict[str, JobSpec] = {spec.job: spec for spec in admitted}
        #: Root span ``(trace_id, span_id)`` recorded at each job's first
        #: execution — later epochs parent their spans under it.
        self.span_roots: dict[str, tuple[str, str]] = span_roots
        #: Supervision attempt counters that survive restarts: a job that
        #: hung twice before a crash has two strikes after it, too.
        self.attempts: dict[str, int] = attempts
        #: Live journal records (compaction-policy input; headers excluded).
        self.record_count = len(load.records)

        self.epoch += 1
        self.journal = Journal(
            self.root / "serve.jsonl", SERVE_FINGERPRINT, fsync_every=1
        )
        self.journal.append({"type": "epoch", "epoch": self.epoch})
        self.record_count += 1

    # ---- journal records -----------------------------------------------------

    def record_job(self, spec: JobSpec) -> None:
        """Persist an admission (durable before the client sees 202)."""
        self.journal.append(spec.as_record())
        self.record_count += 1
        self.admitted[spec.job] = spec

    def record_done(self, job: str, status: str, detail: str = "",
                    degraded: bool = False) -> None:
        """Persist a terminal state, self-contained enough to outlive a
        compaction of the job's admission record."""
        spec = self.admitted.get(job)
        record = {
            "type": "job_done", "job": job, "status": status,
            "detail": detail, "epoch": self.epoch,
            "tenant": spec.tenant if spec else "",
            "verb": spec.verb if spec else "",
            "seq": spec.seq if spec else 0,
            "degraded": degraded,
        }
        self.journal.append(record)
        self.record_count += 1
        self.terminal[job] = status
        self.terminal_records[job] = record

    def record_attempt(self, job: str, attempt: int, reason: str) -> None:
        """Persist a supervision strike (hang kill, crash) against *job*."""
        self.journal.append({
            "type": "job_attempt", "job": job, "attempt": attempt,
            "reason": reason, "epoch": self.epoch,
        })
        self.record_count += 1
        self.attempts[job] = attempt

    def record_span_root(self, job: str, trace_id: str, span_id: str) -> None:
        """Remember a job's root span so restarts keep span parentage."""
        self.journal.append({
            "type": "job_span", "job": job, "trace": trace_id, "span": span_id,
        })
        self.record_count += 1
        self.span_roots[job] = (trace_id, span_id)

    def claim_seq(self) -> int:
        seq = self.next_seq
        self.next_seq += 1
        return seq

    def span_id_base(self) -> int:
        """Start of this epoch's span-id block (0 on the first epoch)."""
        return (self.epoch - 1) * SPAN_ID_STRIDE

    def spans_path(self, job: str, epoch: int | None = None) -> Path:
        return super().spans_path(job, epoch or self.epoch)

    def close(self) -> None:
        self.journal.close()

    # ---- compaction ----------------------------------------------------------

    @property
    def _compact_tmp(self) -> Path:
        return self.root / "serve.jsonl.compact"

    def compact(self, keep_terminal: int | None = None,
                reason: str = "idle") -> dict:
        """Fold the journal into an equivalent bounded snapshot.

        Caller contract: no job may be mid-execution (idle service, or the
        offline ``repro serve --compact`` path) — the journal fd is closed
        for the swap and reopened after.

        Returns compaction stats (records before/after, terminals archived
        this pass, the policy *reason*) for the ``serve_compact`` event and
        the CLI summary.
        """
        keep = DEFAULT_KEEP_TERMINAL if keep_terminal is None else max(0, keep_terminal)
        records_before = self.record_count
        self.journal.close()

        def seq_of(job: str) -> int:
            spec = self.admitted.get(job)
            return spec.seq if spec else 0

        terminal_jobs = sorted(self.terminal, key=seq_of)
        kept = terminal_jobs[len(terminal_jobs) - keep:] if keep else []
        pruned = terminal_jobs[:len(terminal_jobs) - len(kept)]
        self.archived_terminals += len(pruned)

        records: list[dict] = [
            {
                "type": "header",
                "schema": RUNNER_SCHEMA_VERSION,
                "fingerprint": SERVE_FINGERPRINT,
            },
            {
                # next_seq must survive the pruned admissions: job ids are
                # never reissued, or archived reports would collide.
                "type": "snapshot",
                "next_seq": self.next_seq,
                "archived_terminals": self.archived_terminals,
            },
            {"type": "epoch", "epoch": self.epoch},
        ]
        for job in kept:
            records.append(dict(self.terminal_records[job]))
        pending = sorted(
            (spec for spec in self.admitted.values()
             if spec.job not in self.terminal),
            key=lambda spec: spec.seq,
        )
        for spec in pending:
            records.append(spec.as_record())
            if self.attempts.get(spec.job):
                records.append({
                    "type": "job_attempt", "job": spec.job,
                    "attempt": self.attempts[spec.job],
                    "reason": "compacted", "epoch": self.epoch,
                })
            if spec.job in self.span_roots:
                trace_id, span_id = self.span_roots[spec.job]
                records.append({
                    "type": "job_span", "job": spec.job,
                    "trace": trace_id, "span": span_id,
                })

        tmp = self._compact_tmp
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            os.write(fd, b"".join(_encode_record(record) for record in records))
            os.fsync(fd)
        finally:
            os.close(fd)
        # Snapshot durable, old journal still live: a crash here recovers
        # from the uncompacted journal, identically.
        kill_point("compact-snapshot")
        os.replace(tmp, self.root / "serve.jsonl")
        dir_fd = os.open(self.root, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
        # Rename durable: a crash here recovers from the compacted journal —
        # same pending set, same terminals, same next_seq.
        kill_point("compact-commit")

        # Terminal jobs never re-execute; their campaign resume journals and
        # span exports are dead weight once the report files are final.
        for job in terminal_jobs:
            self.job_journal(job).unlink(missing_ok=True)
        for job in pruned:
            self.admitted.pop(job, None)
            self.terminal.pop(job, None)
            self.terminal_records.pop(job, None)
            self.attempts.pop(job, None)
            self.span_roots.pop(job, None)

        self.journal = Journal(
            self.root / "serve.jsonl", SERVE_FINGERPRINT, fsync_every=1
        )
        self.record_count = len(records) - 1  # header excluded
        return {
            "records_before": records_before,
            "records_after": self.record_count,
            "archived_terminals": len(pruned),
            "kept_terminals": len(kept),
            "reason": reason,
        }

    # ---- drain ---------------------------------------------------------------

    def flush_for_drain(self) -> None:
        """Final durability barrier of a graceful drain (mid-drain chaos
        kill point sits here: after the decision to stop, before the journal
        is guaranteed flushed)."""
        kill_point("mid-drain")
        self.journal.flush()

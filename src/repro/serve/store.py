"""Durable job state for the simulation service.

Everything the service must not lose lives in one directory::

    <journal-dir>/
        serve.jsonl               service journal (admissions, terminals,
                                  epochs, span roots) — fsync per record
        jobs/<id>.journal.jsonl   per-job campaign runner journal
        jobs/<id>.report.json     final report (atomic: tmp+fsync+replace)
        jobs/<id>.runner.json     runner execution report
        jobs/<id>.spans.<N>.jsonl span export of epoch N's execution

The serve journal reuses the hardened :class:`repro.runner.Journal`
(CRC-per-record, O_APPEND atomic lines, truncated-tail tolerance) with
``fsync_every=1``: a job is admitted only once its record is on stable
storage, so an admission the client saw acknowledged survives any crash.

Restart recovery is a pure fold over the journal: admissions minus
terminals, in admission order, are the pending jobs of the new epoch.
Reports are written atomically to a separate file per job, so a reader can
never observe a half-written report and a crash mid-write leaves the
previous state intact.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.runner.chaos import kill_point
from repro.runner.journal import Journal, load_journal
from repro.serve.jobs import JobSpec

__all__ = ["ServeStore"]

#: Fingerprint of every serve journal — a journal dir belongs to the
#: service, not to any single campaign.
SERVE_FINGERPRINT = {"verb": "serve"}

#: Span-id block reserved per epoch: epoch N's tracers allocate ids from
#: ``N * SPAN_ID_STRIDE``, so span files from different epochs of the same
#: job merge without id collisions.
SPAN_ID_STRIDE = 1_000_000


class ServeStore:
    """The service's journal, artifact paths and restart recovery."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)

        # Scan before Journal construction appends anything: the full record
        # list (not just completed tasks) is what recovery folds over.
        load = load_journal(self.root / "serve.jsonl")
        self.corrupt_records = load.corrupt

        self.epoch = 0
        self.next_seq = 1
        done: dict[str, str] = {}
        admitted: list[JobSpec] = []
        span_roots: dict[str, tuple[str, str]] = {}
        for record in load.records:
            kind = record.get("type")
            if kind == "epoch":
                self.epoch = max(self.epoch, int(record.get("epoch", 0)))
            elif kind == "job":
                spec = JobSpec.from_record(record)
                admitted.append(spec)
                self.next_seq = max(self.next_seq, spec.seq + 1)
            elif kind == "job_done":
                done[record.get("job", "")] = record.get("status", "done")
            elif kind == "job_span":
                span_roots[record.get("job", "")] = (
                    record.get("trace", ""), record.get("span", ""),
                )

        #: Jobs admitted by earlier epochs that never reached a terminal
        #: record — the new epoch re-enqueues them in admission order.
        self.recovered: list[JobSpec] = [
            spec for spec in admitted if spec.job not in done
        ]
        #: Terminal status by job id (``done``/``failed``), across epochs.
        self.terminal: dict[str, str] = done
        #: All admissions ever, by id (status endpoints answer for old jobs).
        self.admitted: dict[str, JobSpec] = {spec.job: spec for spec in admitted}
        #: Root span ``(trace_id, span_id)`` recorded at each job's first
        #: execution — later epochs parent their spans under it.
        self.span_roots: dict[str, tuple[str, str]] = span_roots

        self.epoch += 1
        self.journal = Journal(
            self.root / "serve.jsonl", SERVE_FINGERPRINT, fsync_every=1
        )
        self.journal.append({"type": "epoch", "epoch": self.epoch})

    # ---- journal records -----------------------------------------------------

    def record_job(self, spec: JobSpec) -> None:
        """Persist an admission (durable before the client sees 202)."""
        self.journal.append(spec.as_record())
        self.admitted[spec.job] = spec

    def record_done(self, job: str, status: str, detail: str = "") -> None:
        self.journal.append({
            "type": "job_done", "job": job, "status": status,
            "detail": detail, "epoch": self.epoch,
        })
        self.terminal[job] = status

    def record_span_root(self, job: str, trace_id: str, span_id: str) -> None:
        """Remember a job's root span so restarts keep span parentage."""
        self.journal.append({
            "type": "job_span", "job": job, "trace": trace_id, "span": span_id,
        })
        self.span_roots[job] = (trace_id, span_id)

    def claim_seq(self) -> int:
        seq = self.next_seq
        self.next_seq += 1
        return seq

    def span_id_base(self) -> int:
        """Start of this epoch's span-id block (0 on the first epoch)."""
        return (self.epoch - 1) * SPAN_ID_STRIDE

    def close(self) -> None:
        self.journal.close()

    # ---- artifact paths ------------------------------------------------------

    def job_journal(self, job: str) -> Path:
        return self.jobs_dir / f"{job}.journal.jsonl"

    def report_path(self, job: str) -> Path:
        return self.jobs_dir / f"{job}.report.json"

    def runner_path(self, job: str) -> Path:
        return self.jobs_dir / f"{job}.runner.json"

    def spans_path(self, job: str, epoch: int | None = None) -> Path:
        return self.jobs_dir / f"{job}.spans.{epoch or self.epoch}.jsonl"

    # ---- atomic artifact writes ----------------------------------------------

    def _atomic_write(self, target: Path, text: str) -> None:
        """tmp + fsync + rename: readers see the old file or the new one."""
        tmp = target.with_suffix(target.suffix + ".tmp")
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            os.write(fd, text.encode())
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, target)

    def _render_json(self, payload: dict) -> str:
        # Byte-for-byte the repro.obs.export.write_json format, so a serve
        # report diffs clean against the same campaign's CLI --json output.
        return json.dumps(payload, indent=2, sort_keys=False, default=str) + "\n"

    def write_report(self, job: str, payload: dict) -> None:
        self._atomic_write(self.report_path(job), self._render_json(payload))

    def write_runner(self, job: str, payload: dict) -> None:
        self._atomic_write(self.runner_path(job), self._render_json(payload))

    def read_report(self, job: str) -> bytes | None:
        path = self.report_path(job)
        return path.read_bytes() if path.exists() else None

    def read_runner(self, job: str) -> bytes | None:
        path = self.runner_path(job)
        return path.read_bytes() if path.exists() else None

    # ---- drain ---------------------------------------------------------------

    def flush_for_drain(self) -> None:
        """Final durability barrier of a graceful drain (mid-drain chaos
        kill point sits here: after the decision to stop, before the journal
        is guaranteed flushed)."""
        kill_point("mid-drain")
        self.journal.flush()

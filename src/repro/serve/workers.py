"""Supervised job-worker children of ``repro serve``.

The PR 4 campaign pool (:mod:`repro.runner.pool`) supervises *tasks inside
one campaign*; this module lifts the same shape one level: each admitted
job runs in its own child process, so ``--workers M`` jobs execute
concurrently and a job that wedges the interpreter (or is SIGKILLed by
chaos) takes down only itself — the service's journal, queues and HTTP
front end live in the parent and keep serving.

Topology mirrors the pool deliberately: children share one result queue
carrying three message shapes —

``("start", job, attempt, pid)``
    Execution begins; the pid is what supervision (and tests) SIGSTOP/KILL.
``("beat", job, attempt)``
    Liveness, every ``heartbeat_s``, from a daemon thread in the child.
    A child that stops beating without finishing is *hung*.
``("done", job, attempt, status, detail, duration_s, degraded, degrade_reason)``
    The attempt's terminal outcome (:class:`~repro.serve.jobs.JobOutcome`
    flattened — multiprocessing queues carry primitives, not dataclasses).

The parent SIGKILLs suspects (:meth:`JobWorkers.kill` — which also
terminates SIGSTOPped children) and requeues the job with a bounded
attempt budget; stale messages from a killed attempt are dropped by the
``(job, attempt)`` token, exactly like the pool's.

Children never touch ``serve.jsonl``: they get the journal *directory* and
build a :class:`~repro.serve.store.JobPaths` — report, runner-report and
span artifacts are theirs to write (atomically), the admission/terminal
records stay single-writer in the parent.

Cancellation is a per-job ``multiprocessing.Event``: the drain path sets
it and the campaign runner inside the child stops at its next task
boundary with the job's resume journal flushed.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field
from queue import Empty
from typing import Any

from repro.obs.spans import SpanTracer
from repro.serve.jobs import JobSpec, execute_job
from repro.serve.store import JobPaths

__all__ = ["JobHandle", "JobWorkers", "job_worker_main"]


def _beat_loop(result_queue, job: str, attempt: int, interval: float,
               stop: threading.Event) -> None:
    while not stop.wait(interval):
        try:
            result_queue.put(("beat", job, attempt))
        except Exception:
            return  # parent went away; nothing left to report to


def job_worker_main(record: dict, root: str, epoch: int, attempt: int,
                    jobs: int, span_base: int,
                    span_prev: tuple[str, str] | None, resumed: bool,
                    serve_counters: dict | None, cancel, result_queue,
                    heartbeat_s: float) -> None:
    """Child process body: run one job attempt, report, exit.

    *span_base*/*span_prev* reconstruct the job's tracer exactly as the
    parent predicted it (span ids are sequential and deterministic, so the
    parent journals the root span's ids *before* the fork and the child's
    first ``begin()`` produces the same ids — the root survives even if
    this process is SIGKILLed before it writes a single span).
    """
    spec = JobSpec.from_record(record)
    try:
        result_queue.put(("start", spec.job, attempt, os.getpid()))
        stop = threading.Event()
        beat = threading.Thread(
            target=_beat_loop,
            args=(result_queue, spec.job, attempt, heartbeat_s, stop),
            daemon=True,
        )
        beat.start()
        paths = JobPaths(root)
        tracer = root_span = None
        if spec.verb == "check":
            tracer = SpanTracer(id_base=span_base, remote_parent=span_prev)
            root_span = tracer.begin(
                f"serve:job:{spec.job}", epoch=epoch,
                tenant=spec.tenant, verb=spec.verb, resumed=resumed,
            )
            tracer.remote_parent = (root_span.trace_id, root_span.span_id)
        try:
            outcome = execute_job(
                spec, paths, cancel, tracer=tracer,
                serve_counters=serve_counters, jobs=jobs,
            )
        finally:
            stop.set()
        if tracer is not None:
            if outcome.status == "done":
                tracer.end(root_span)
            # aborted/failed: the open root exports with an aborted status.
            tracer.write(paths.spans_path(spec.job, epoch))
        result_queue.put((
            "done", spec.job, attempt, outcome.status, outcome.detail,
            outcome.duration_s, outcome.degraded, outcome.degrade_reason,
        ))
    except BaseException as exc:  # noqa: BLE001 - last-ditch: report, then die
        try:
            result_queue.put((
                "done", spec.job, attempt, "failed",
                f"job worker died: {type(exc).__name__}: {exc}",
                0.0, False, "",
            ))
        except Exception:
            pass


@dataclass
class JobHandle:
    """Parent-side state of one running job attempt."""

    spec: JobSpec
    process: Any
    cancel: Any
    #: 1-based supervision attempt (strikes from earlier epochs included).
    attempt: int
    started_at: float
    last_beat: float
    #: Wall-clock budget for this attempt (None = heartbeat-only supervision).
    budget_s: float | None = None
    #: Child pid, once its ``start`` message arrives.
    pid: int | None = None
    #: When the parent first saw the process dead without a ``done`` —
    #: grace for result-queue latency before declaring a crash.
    dead_at: float | None = None
    extra: dict = field(default_factory=dict)


class JobWorkers:
    """The service's set of supervised job children."""

    def __init__(self, heartbeat_s: float = 0.2,
                 start_method: str | None = None) -> None:
        self.heartbeat_s = heartbeat_s
        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self.result_queue = self._ctx.Queue()
        #: job id -> handle for every live (or not-yet-reaped) attempt.
        self.running: dict[str, JobHandle] = {}

    # ---- lifecycle -----------------------------------------------------------

    def launch(self, spec: JobSpec, *, root: str, epoch: int, attempt: int,
               jobs: int, span_base: int = 0,
               span_prev: tuple[str, str] | None = None,
               resumed: bool = False, budget_s: float | None = None,
               serve_counters: dict | None = None) -> JobHandle:
        cancel = self._ctx.Event()
        process = self._ctx.Process(
            target=job_worker_main,
            args=(spec.as_record(), root, epoch, attempt, jobs, span_base,
                  span_prev, resumed, serve_counters, cancel,
                  self.result_queue, self.heartbeat_s),
            # Not a daemon: a ``--jobs N`` campaign must be allowed to start
            # its own worker pool (daemonic processes cannot have children),
            # and every shutdown path reaps the child explicitly anyway.
            daemon=False,
            name=f"repro-serve-{spec.job}",
        )
        process.start()
        now = time.monotonic()
        handle = JobHandle(
            spec=spec, process=process, cancel=cancel, attempt=attempt,
            started_at=now, last_beat=now, budget_s=budget_s,
        )
        self.running[spec.job] = handle
        return handle

    def finish(self, job: str) -> JobHandle | None:
        """Reap a job whose ``done`` message was consumed."""
        handle = self.running.pop(job, None)
        if handle is not None:
            handle.process.join(2.0)
            if handle.process.is_alive():  # pragma: no cover - beat thread wedge
                handle.process.kill()
                handle.process.join(1.0)
        return handle

    def kill(self, job: str) -> JobHandle | None:
        """SIGKILL a suspect attempt (also fells SIGSTOPped children)."""
        handle = self.running.pop(job, None)
        if handle is None:
            return None
        if handle.process.is_alive():
            handle.process.kill()
        handle.process.join(2.0)
        return handle

    def cancel_all(self) -> None:
        """Drain path: ask every running job to stop at its next boundary."""
        for handle in self.running.values():
            handle.cancel.set()

    def shutdown(self) -> None:
        for job in list(self.running):
            self.kill(job)
        try:
            self.result_queue.close()
        except Exception:
            pass

    # ---- messages ------------------------------------------------------------

    def poll(self) -> list[tuple]:
        """Drain currently available messages without blocking.

        Malformed messages (torn by a killed child) are dropped; staleness
        (a message from a killed attempt) is the caller's to judge via the
        ``(job, attempt)`` token.
        """
        messages: list[tuple] = []
        while True:
            try:
                messages.append(self.result_queue.get_nowait())
            except Empty:
                break
            except (EOFError, OSError, ValueError):  # pragma: no cover
                break
        return [m for m in messages if isinstance(m, tuple) and len(m) >= 3]

"""Functional semantics of sub-word (packed) arithmetic.

This package is the bit-exact data-path model underneath the simulator: every
MMX instruction the paper's kernels use is implemented here on plain 64-bit
integer words, with NumPy doing the lane-level arithmetic.
"""

from repro.simd.lanes import (
    LANE_WIDTHS,
    WORD_BITS,
    WORD_BYTES,
    WORD_MASK,
    bytes_of,
    check_width,
    check_word,
    extract_lane,
    from_bytes,
    insert_lane,
    join,
    lane_count,
    lane_mask,
    replicate,
    signed_dtype,
    split,
    to_signed,
    to_unsigned,
    unsigned_dtype,
)
from repro.simd.arithmetic import (
    padd,
    padds,
    paddus,
    pavg,
    pmax,
    pmin,
    psub,
    psubs,
    psubus,
)
from repro.simd.multiply import (
    pmaddwd,
    pmul_widening,
    pmulhuw,
    pmulhw,
    pmullw,
    pmuludq,
)
from repro.simd.pack import packss, packus, permute_word, punpckh, punpckl
from repro.simd.shift import psll, psllq_bytes, psra, psrl, psrlq_bytes
from repro.simd.compare import pcmpeq, pcmpgt
from repro.simd.logical import pand, pandn, por, pxor

__all__ = [
    "LANE_WIDTHS",
    "WORD_BITS",
    "WORD_BYTES",
    "WORD_MASK",
    "bytes_of",
    "check_width",
    "check_word",
    "extract_lane",
    "from_bytes",
    "insert_lane",
    "join",
    "lane_count",
    "lane_mask",
    "replicate",
    "signed_dtype",
    "split",
    "to_signed",
    "to_unsigned",
    "unsigned_dtype",
    "padd",
    "padds",
    "paddus",
    "pavg",
    "pmax",
    "pmin",
    "psub",
    "psubs",
    "psubus",
    "pmaddwd",
    "pmul_widening",
    "pmulhuw",
    "pmulhw",
    "pmullw",
    "pmuludq",
    "packss",
    "packus",
    "permute_word",
    "punpckh",
    "punpckl",
    "psll",
    "psllq_bytes",
    "psra",
    "psrl",
    "psrlq_bytes",
    "pcmpeq",
    "pcmpgt",
    "pand",
    "pandn",
    "por",
    "pxor",
]

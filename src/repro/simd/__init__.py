"""Functional semantics of sub-word (packed) arithmetic.

This package is the bit-exact data-path model underneath the simulator: every
MMX instruction the paper's kernels use is implemented here as a pure-integer
SWAR algorithm on plain 64-bit words (carry-break masking, §2) — no per-op
array allocation.  The original NumPy lane-vector implementations survive as
:mod:`repro.simd.reference`, the independent oracle that the property suite,
``repro check --swar-check`` and the sim-speed benchmark diff against.

Backend selection: the executor resolves packed-op handlers through
:func:`active_backend` at instruction-decode time, so a whole simulation can
be pointed at the reference data path with :func:`use_backend` (used by
``benchmarks/bench_simspeed.py`` to measure the SWAR speedup).  Switching the
backend does not affect programs whose instructions were already decoded —
build machines inside the context.

Debug validation: :func:`set_validation` / :func:`full_validation` re-enable
per-call word range checks inside every packed op (see
:mod:`repro.simd.swar`); the fault-injection harness campaigns run under it.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from types import ModuleType
from typing import Iterator

from repro.simd.lanes import (
    LANE_WIDTHS,
    WORD_BITS,
    WORD_BYTES,
    WORD_MASK,
    bytes_of,
    check_width,
    check_word,
    extract_lane,
    from_bytes,
    insert_lane,
    join,
    lane_count,
    lane_mask,
    replicate,
    signed_dtype,
    split,
    to_signed,
    to_unsigned,
    unsigned_dtype,
)
from repro.simd.arithmetic import (
    padd,
    padds,
    paddus,
    pavg,
    pmax,
    pmin,
    psub,
    psubs,
    psubus,
)
from repro.simd.multiply import (
    pmaddwd,
    pmul_widening,
    pmulhuw,
    pmulhw,
    pmullw,
    pmuludq,
)
from repro.simd.pack import packss, packus, permute_word, punpckh, punpckl
from repro.simd.shift import psll, psllq_bytes, psra, psrl, psrlq_bytes
from repro.simd.compare import pcmpeq, pcmpgt
from repro.simd.logical import pand, pandn, por, pxor
from repro.simd.swar import full_validation, set_validation, validation_enabled

#: Names of the selectable packed-op backends.
BACKENDS = ("swar", "reference")

_active_backend = "swar"


def active_backend() -> ModuleType:
    """The module currently providing packed-op semantics.

    Either this package itself (the SWAR fast path, the default) or
    :mod:`repro.simd.reference` (the NumPy oracle).  Consumers resolve ops
    with ``getattr(active_backend(), "padd")`` etc.; both modules export the
    same names and signatures.
    """
    if _active_backend == "reference":
        from repro.simd import reference

        return reference
    return sys.modules[__name__]


def backend_name() -> str:
    """Name of the active packed-op backend (``"swar"`` or ``"reference"``)."""
    return _active_backend


def set_backend(name: str) -> str:
    """Select the packed-op backend by name; returns the previous name."""
    global _active_backend
    if name not in BACKENDS:
        raise ValueError(f"unknown simd backend {name!r}; choose from {BACKENDS}")
    previous = _active_backend
    _active_backend = name
    return previous


@contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Context manager running its body with packed-op backend *name*.

    Only affects instructions decoded inside the context (the executor's
    micro-op cache binds handlers at decode time).
    """
    previous = set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)


__all__ = [
    "LANE_WIDTHS",
    "WORD_BITS",
    "WORD_BYTES",
    "WORD_MASK",
    "bytes_of",
    "check_width",
    "check_word",
    "extract_lane",
    "from_bytes",
    "insert_lane",
    "join",
    "lane_count",
    "lane_mask",
    "replicate",
    "signed_dtype",
    "split",
    "to_signed",
    "to_unsigned",
    "unsigned_dtype",
    "padd",
    "padds",
    "paddus",
    "pavg",
    "pmax",
    "pmin",
    "psub",
    "psubs",
    "psubus",
    "pmaddwd",
    "pmul_widening",
    "pmulhuw",
    "pmulhw",
    "pmullw",
    "pmuludq",
    "packss",
    "packus",
    "permute_word",
    "punpckh",
    "punpckl",
    "psll",
    "psllq_bytes",
    "psra",
    "psrl",
    "psrlq_bytes",
    "pcmpeq",
    "pcmpgt",
    "pand",
    "pandn",
    "por",
    "pxor",
    "BACKENDS",
    "active_backend",
    "backend_name",
    "set_backend",
    "use_backend",
    "full_validation",
    "set_validation",
    "validation_enabled",
]

"""Packed add/subtract with wrap-around and saturating variants.

These implement the MMX semantics described in the paper's §2: standard
word-precision adders with carry chains optionally broken at sub-word
boundaries, plus the saturating forms used by the pack/media instructions.

Each op is a pure-integer SWAR algorithm on the packed 64-bit word itself —
the per-lane MSB column (``high``) is masked out of the machine add so no
carry can cross a lane boundary, then the true MSB column is patched back in
with XOR; saturation and compares fall out of the carry/borrow/overflow
columns the same masking exposes.  No lane vectors are materialized, which is
what makes the simulator's inner loop allocation-free.

Width-64 note: the NumPy reference model (:mod:`repro.simd.reference`) casts
lanes through ``int64``, so at width 64 its "unsigned" saturating/average/
min-max forms inherit signed-reinterpretation artifacts.  The ISA never
reaches those combinations (no 64-bit saturating/average/min-max opcodes
exist), but the API keeps them bit-identical to the reference, which is the
differential oracle.
"""

from __future__ import annotations

from repro.simd import swar
from repro.simd.lanes import WORD_MASK, check_word
from repro.simd.swar import MASKS, ugt_mask


def _signed64(value: int) -> int:
    return value - (1 << 64) if value >> 63 else value


def padd(a: int, b: int, width: int) -> int:
    """Packed add with wrap-around (``paddb``/``paddw``/``paddd``/``paddq``)."""
    if swar._validate:
        check_word(a), check_word(b)
    try:
        _, _, high, not_high, _ = MASKS[width]
    except KeyError:
        raise swar.bad_width(width) from None
    if width == 64:
        return (a + b) & WORD_MASK
    return ((a & not_high) + (b & not_high)) ^ ((a ^ b) & high)


def psub(a: int, b: int, width: int) -> int:
    """Packed subtract with wrap-around (``psubb``/``psubw``/``psubd``)."""
    if swar._validate:
        check_word(a), check_word(b)
    try:
        _, _, high, not_high, _ = MASKS[width]
    except KeyError:
        raise swar.bad_width(width) from None
    if width == 64:
        return (a - b) & WORD_MASK
    return ((a | high) - (b & not_high)) ^ ((a ^ b ^ high) & high)


def padds(a: int, b: int, width: int) -> int:
    """Packed add with signed saturation (``paddsb``/``paddsw``)."""
    if swar._validate:
        check_word(a), check_word(b)
    try:
        lane_mask, _, high, not_high, signed_max = MASKS[width]
    except KeyError:
        raise swar.bad_width(width) from None
    if width == 64:
        return (a + b) & WORD_MASK  # int64 reference wraps; see module note
    total = ((a & not_high) + (b & not_high)) ^ ((a ^ b) & high)
    overflow = ~(a ^ b) & (a ^ total) & high
    if not overflow:
        return total
    full = (overflow >> (width - 1)) * lane_mask
    saturated = signed_max + ((a & high) >> (width - 1))
    return (total & ~full) | (saturated & full)


def psubs(a: int, b: int, width: int) -> int:
    """Packed subtract with signed saturation (``psubsb``/``psubsw``)."""
    if swar._validate:
        check_word(a), check_word(b)
    try:
        lane_mask, _, high, not_high, signed_max = MASKS[width]
    except KeyError:
        raise swar.bad_width(width) from None
    if width == 64:
        return (a - b) & WORD_MASK  # int64 reference wraps; see module note
    diff = ((a | high) - (b & not_high)) ^ ((a ^ b ^ high) & high)
    overflow = (a ^ b) & (a ^ diff) & high
    if not overflow:
        return diff
    full = (overflow >> (width - 1)) * lane_mask
    saturated = signed_max + ((a & high) >> (width - 1))
    return (diff & ~full) | (saturated & full)


def paddus(a: int, b: int, width: int) -> int:
    """Packed add with unsigned saturation (``paddusb``/``paddusw``)."""
    if swar._validate:
        check_word(a), check_word(b)
    try:
        lane_mask, _, high, not_high, _ = MASKS[width]
    except KeyError:
        raise swar.bad_width(width) from None
    if width == 64:
        total = (a + b) & WORD_MASK
        return 0 if total >> 63 else total  # int64 reference clips at 0
    total = ((a & not_high) + (b & not_high)) ^ ((a ^ b) & high)
    carry = ((a & b) | ((a | b) & ~total)) & high
    return total | ((carry >> (width - 1)) * lane_mask)


def psubus(a: int, b: int, width: int) -> int:
    """Packed subtract with unsigned saturation (``psubusb``/``psubusw``)."""
    if swar._validate:
        check_word(a), check_word(b)
    try:
        lane_mask, _, high, not_high, _ = MASKS[width]
    except KeyError:
        raise swar.bad_width(width) from None
    if width == 64:
        diff = (a - b) & WORD_MASK
        return 0 if diff >> 63 else diff  # int64 reference clips at 0
    diff = ((a | high) - (b & not_high)) ^ ((a ^ b ^ high) & high)
    borrow = ((~a & b) | ((~a | b) & diff)) & high
    return diff & ~((borrow >> (width - 1)) * lane_mask) & WORD_MASK


def pavg(a: int, b: int, width: int) -> int:
    """Packed unsigned average with rounding (``pavgb``/``pavgw``)."""
    if swar._validate:
        check_word(a), check_word(b)
    try:
        _, _, high, not_high, _ = MASKS[width]
    except KeyError:
        raise swar.bad_width(width) from None
    if width == 64:
        total = (a + b + 1) & WORD_MASK
        return (_signed64(total) >> 1) & WORD_MASK  # int64 reference artifact
    # Per lane, (a|b) - ((a^b)>>1) equals the rounding average (a+b+1)>>1;
    # masking the shifted term with ~high drops the bit each upper lane's
    # LSB leaks into the lane below, and no lane ever borrows.
    return (a | b) - (((a ^ b) >> 1) & not_high)


def pmin(a: int, b: int, width: int, *, signed: bool) -> int:
    """Packed per-lane minimum (``pminub``/``pminsw`` family)."""
    if swar._validate:
        check_word(a), check_word(b)
    try:
        _, _, high, _, _ = MASKS[width]
    except KeyError:
        raise swar.bad_width(width) from None
    if width == 64:
        # int64 reference compares signed regardless of the flag.
        return b if _signed64(a) > _signed64(b) else a
    if signed:
        gt = ugt_mask(a ^ high, b ^ high, width)
    else:
        gt = ugt_mask(a, b, width)
    return (b & gt) | (a & ~gt & WORD_MASK)


def pmax(a: int, b: int, width: int, *, signed: bool) -> int:
    """Packed per-lane maximum (``pmaxub``/``pmaxsw`` family)."""
    if swar._validate:
        check_word(a), check_word(b)
    try:
        _, _, high, _, _ = MASKS[width]
    except KeyError:
        raise swar.bad_width(width) from None
    if width == 64:
        # int64 reference compares signed regardless of the flag.
        return a if _signed64(a) > _signed64(b) else b
    if signed:
        gt = ugt_mask(a ^ high, b ^ high, width)
    else:
        gt = ugt_mask(a, b, width)
    return (a & gt) | (b & ~gt & WORD_MASK)

"""Packed add/subtract with wrap-around and saturating variants.

These implement the MMX semantics described in the paper's §2: standard
word-precision adders with carry chains optionally broken at sub-word
boundaries, plus the saturating forms used by the pack/media instructions.
"""

from __future__ import annotations

import numpy as np

from repro.simd import lanes


def _signed_limits(width: int) -> tuple[int, int]:
    lo = -(1 << (width - 1))
    hi = (1 << (width - 1)) - 1
    return lo, hi


def padd(a: int, b: int, width: int) -> int:
    """Packed add with wrap-around (``paddb``/``paddw``/``paddd``/``paddq``)."""
    la = lanes.split(a, width).astype(np.int64)
    lb = lanes.split(b, width).astype(np.int64)
    return lanes.join(la + lb, width)


def psub(a: int, b: int, width: int) -> int:
    """Packed subtract with wrap-around (``psubb``/``psubw``/``psubd``)."""
    la = lanes.split(a, width).astype(np.int64)
    lb = lanes.split(b, width).astype(np.int64)
    return lanes.join(la - lb, width)


def padds(a: int, b: int, width: int) -> int:
    """Packed add with signed saturation (``paddsb``/``paddsw``)."""
    lo, hi = _signed_limits(width)
    la = lanes.split(a, width, signed=True).astype(np.int64)
    lb = lanes.split(b, width, signed=True).astype(np.int64)
    return lanes.join(np.clip(la + lb, lo, hi), width)


def psubs(a: int, b: int, width: int) -> int:
    """Packed subtract with signed saturation (``psubsb``/``psubsw``)."""
    lo, hi = _signed_limits(width)
    la = lanes.split(a, width, signed=True).astype(np.int64)
    lb = lanes.split(b, width, signed=True).astype(np.int64)
    return lanes.join(np.clip(la - lb, lo, hi), width)


def paddus(a: int, b: int, width: int) -> int:
    """Packed add with unsigned saturation (``paddusb``/``paddusw``)."""
    hi = (1 << width) - 1
    la = lanes.split(a, width).astype(np.int64)
    lb = lanes.split(b, width).astype(np.int64)
    return lanes.join(np.clip(la + lb, 0, hi), width)


def psubus(a: int, b: int, width: int) -> int:
    """Packed subtract with unsigned saturation (``psubusb``/``psubusw``)."""
    hi = (1 << width) - 1
    la = lanes.split(a, width).astype(np.int64)
    lb = lanes.split(b, width).astype(np.int64)
    return lanes.join(np.clip(la - lb, 0, hi), width)


def pavg(a: int, b: int, width: int) -> int:
    """Packed unsigned average with rounding (``pavgb``/``pavgw``)."""
    la = lanes.split(a, width).astype(np.int64)
    lb = lanes.split(b, width).astype(np.int64)
    return lanes.join((la + lb + 1) >> 1, width)


def pmin(a: int, b: int, width: int, *, signed: bool) -> int:
    """Packed per-lane minimum (``pminub``/``pminsw`` family)."""
    la = lanes.split(a, width, signed=signed).astype(np.int64)
    lb = lanes.split(b, width, signed=signed).astype(np.int64)
    return lanes.join(np.minimum(la, lb), width)


def pmax(a: int, b: int, width: int, *, signed: bool) -> int:
    """Packed per-lane maximum (``pmaxub``/``pmaxsw`` family)."""
    la = lanes.split(a, width, signed=signed).astype(np.int64)
    lb = lanes.split(b, width, signed=signed).astype(np.int64)
    return lanes.join(np.maximum(la, lb), width)

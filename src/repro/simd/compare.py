"""Packed compare instructions producing all-ones / all-zeros lane masks.

SWAR forms: equality comes from a zero-detect on ``a ^ b`` (a lane's MSB
column catches any set bit once the low bits are summed against the all-ones
pattern), and signed greater-than is an unsigned borrow extraction after
flipping the sign columns.
"""

from __future__ import annotations

from repro.simd import swar
from repro.simd.lanes import WORD_MASK, check_word
from repro.simd.swar import MASKS, ugt_mask


def pcmpeq(a: int, b: int, width: int) -> int:
    """Per-lane equality: lanes become ``0xFF..F`` when equal, else 0."""
    if swar._validate:
        check_word(a), check_word(b)
    try:
        lane_mask, _, high, not_high, _ = MASKS[width]
    except KeyError:
        raise swar.bad_width(width) from None
    if width == 64:
        return WORD_MASK if a == b else 0
    diff = a ^ b
    # A lane's MSB in `nonzero` is set iff any bit of that lane differs.
    nonzero = (((diff & not_high) + not_high) | diff) & high
    return ((high ^ nonzero) >> (width - 1)) * lane_mask


def pcmpgt(a: int, b: int, width: int) -> int:
    """Per-lane *signed* greater-than: ``a > b`` lanes become all ones."""
    if swar._validate:
        check_word(a), check_word(b)
    try:
        _, _, high, _, _ = MASKS[width]
    except KeyError:
        raise swar.bad_width(width) from None
    if width == 64:
        sa = a - (1 << 64) if a >> 63 else a
        sb = b - (1 << 64) if b >> 63 else b
        return WORD_MASK if sa > sb else 0
    return ugt_mask(a ^ high, b ^ high, width)

"""Packed compare instructions producing all-ones / all-zeros lane masks."""

from __future__ import annotations

import numpy as np

from repro.simd import lanes


def pcmpeq(a: int, b: int, width: int) -> int:
    """Per-lane equality: lanes become ``0xFF..F`` when equal, else 0."""
    la = lanes.split(a, width)
    lb = lanes.split(b, width)
    mask = np.where(la == lb, -1, 0)
    return lanes.join(mask, width)


def pcmpgt(a: int, b: int, width: int) -> int:
    """Per-lane *signed* greater-than: ``a > b`` lanes become all ones."""
    la = lanes.split(a, width, signed=True)
    lb = lanes.split(b, width, signed=True)
    mask = np.where(la > lb, -1, 0)
    return lanes.join(mask, width)

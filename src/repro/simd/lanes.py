"""Sub-word lane packing and unpacking.

An MMX register holds a 64-bit *word* interpreted as a vector of equally sized
*sub-words* (lanes) of 8, 16, 32 or 64 bits.  Throughout the library a packed
word is a plain Python ``int`` in ``[0, 2**64)`` — hashable, cheap to copy and
storable in the register file — and lane-level arithmetic is performed on
little NumPy vectors produced by :func:`split` and folded back with
:func:`join`.

The little-endian byte order matches the Intel convention used by the paper:
lane 0 is the least-significant sub-word of the register.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LaneError

#: Number of bits in a full MMX word.
WORD_BITS = 64

#: Number of bytes in a full MMX word.
WORD_BYTES = 8

#: Mask selecting the 64 bits of a packed word.
WORD_MASK = (1 << WORD_BITS) - 1

#: Sub-word widths (in bits) supported by the MMX architecture.
LANE_WIDTHS = (8, 16, 32, 64)

_UNSIGNED = {8: np.uint8, 16: np.uint16, 32: np.uint32, 64: np.uint64}
_SIGNED = {8: np.int8, 16: np.int16, 32: np.int32, 64: np.int64}


def check_width(width: int) -> None:
    """Raise :class:`LaneError` unless *width* is a legal sub-word width."""
    if width not in LANE_WIDTHS:
        raise LaneError(f"illegal sub-word width {width}; expected one of {LANE_WIDTHS}")


def lane_count(width: int) -> int:
    """Number of lanes of *width* bits in one 64-bit word (8, 4, 2 or 1)."""
    check_width(width)
    return WORD_BITS // width


def lane_mask(width: int) -> int:
    """Bit mask covering a single lane of *width* bits."""
    check_width(width)
    return (1 << width) - 1


def unsigned_dtype(width: int) -> type:
    """NumPy unsigned dtype for lanes of *width* bits."""
    check_width(width)
    return _UNSIGNED[width]


def signed_dtype(width: int) -> type:
    """NumPy signed dtype for lanes of *width* bits."""
    check_width(width)
    return _SIGNED[width]


def check_word(value: int) -> int:
    """Validate that *value* is an int representable in 64 bits; return it."""
    value = int(value)
    if not 0 <= value <= WORD_MASK:
        raise LaneError(f"packed word {value:#x} outside [0, 2**64)")
    return value


def split(value: int, width: int, *, signed: bool = False) -> np.ndarray:
    """Split a packed 64-bit word into its lanes.

    Parameters
    ----------
    value:
        Packed word in ``[0, 2**64)``.
    width:
        Lane width in bits (8, 16, 32 or 64).
    signed:
        If true, lanes are returned with a signed dtype (two's complement
        reinterpretation); otherwise unsigned.

    Returns
    -------
    numpy.ndarray
        Writable array with ``64 // width`` elements, lane 0 first.
    """
    check_width(width)
    raw = check_word(value).to_bytes(WORD_BYTES, "little")
    lanes = np.frombuffer(raw, dtype=_UNSIGNED[width]).copy()
    if signed:
        return lanes.view(_SIGNED[width])
    return lanes


def join(lanes: np.ndarray | list[int], width: int) -> int:
    """Join lane values back into a packed 64-bit word.

    Accepts signed or unsigned inputs; each lane is truncated (two's
    complement) to *width* bits.  Inverse of :func:`split`.
    """
    check_width(width)
    n = lane_count(width)
    arr = np.asarray(lanes)
    if arr.shape != (n,):
        raise LaneError(f"expected {n} lanes of width {width}, got shape {arr.shape}")
    # Cast through a signed 64-bit view so that negative Python ints and
    # signed dtypes wrap correctly before the final unsigned reinterpretation.
    as_signed = arr.astype(np.int64, copy=False)
    truncated = as_signed.astype(_SIGNED[width]).view(_UNSIGNED[width])
    return int.from_bytes(truncated.tobytes(), "little")


def to_signed(value: int, width: int) -> int:
    """Reinterpret the low *width* bits of *value* as a two's-complement int."""
    check_width(width)
    value &= lane_mask(width)
    if value >= 1 << (width - 1):
        value -= 1 << width
    return value


def to_unsigned(value: int, width: int) -> int:
    """Two's-complement encode *value* into an unsigned *width*-bit field."""
    check_width(width)
    return value & lane_mask(width)


def bytes_of(value: int) -> bytes:
    """The eight little-endian bytes of a packed word."""
    return check_word(value).to_bytes(WORD_BYTES, "little")


def from_bytes(raw: bytes) -> int:
    """Build a packed word from eight little-endian bytes."""
    if len(raw) != WORD_BYTES:
        raise LaneError(f"expected {WORD_BYTES} bytes, got {len(raw)}")
    return int.from_bytes(raw, "little")


def replicate(scalar: int, width: int) -> int:
    """Broadcast *scalar* (truncated to *width* bits) into every lane.

    Multiplying the lane value by the lane-repeat constant (``0x0101...``
    pattern: ``WORD_MASK // lane_mask``) copies it into every lane in one
    machine op — the classic SWAR broadcast.
    """
    check_width(width)
    mask = (1 << width) - 1
    return (int(scalar) & mask) * (WORD_MASK // mask)


def extract_lane(value: int, index: int, width: int, *, signed: bool = False) -> int:
    """Extract lane *index* from a packed word as a Python int."""
    check_width(width)
    n = lane_count(width)
    if not 0 <= index < n:
        raise LaneError(f"lane index {index} out of range for width {width}")
    lane = (check_word(value) >> (index * width)) & lane_mask(width)
    return to_signed(lane, width) if signed else lane


def insert_lane(value: int, index: int, width: int, lane: int) -> int:
    """Return *value* with lane *index* replaced by *lane* (truncated)."""
    check_width(width)
    n = lane_count(width)
    if not 0 <= index < n:
        raise LaneError(f"lane index {index} out of range for width {width}")
    mask = lane_mask(width) << (index * width)
    field = to_unsigned(int(lane), width) << (index * width)
    return (check_word(value) & ~mask & WORD_MASK) | field

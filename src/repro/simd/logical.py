"""Bitwise logical instructions on full 64-bit words."""

from __future__ import annotations

from repro.simd import lanes


def pand(a: int, b: int) -> int:
    """Bitwise AND (``pand``)."""
    return lanes.check_word(a) & lanes.check_word(b)


def pandn(a: int, b: int) -> int:
    """AND-NOT: ``(~a) & b`` — destination operand is inverted (``pandn``)."""
    return (~lanes.check_word(a) & lanes.WORD_MASK) & lanes.check_word(b)


def por(a: int, b: int) -> int:
    """Bitwise OR (``por``)."""
    return lanes.check_word(a) | lanes.check_word(b)


def pxor(a: int, b: int) -> int:
    """Bitwise XOR (``pxor``); ``pxor r, r`` is the canonical register clear."""
    return lanes.check_word(a) ^ lanes.check_word(b)

"""Bitwise logical instructions on full 64-bit words.

These were always single machine ops; the SWAR rewrite only moved their
range validation behind the debug toggle (:func:`repro.simd.set_validation`)
so the simulator's hot loop pays nothing for values the register file already
guarantees are in range.
"""

from __future__ import annotations

from repro.simd import swar
from repro.simd.lanes import WORD_MASK, check_word


def pand(a: int, b: int) -> int:
    """Bitwise AND (``pand``)."""
    if swar._validate:
        check_word(a), check_word(b)
    return a & b


def pandn(a: int, b: int) -> int:
    """AND-NOT: ``(~a) & b`` — destination operand is inverted (``pandn``)."""
    if swar._validate:
        check_word(a), check_word(b)
    return (a ^ WORD_MASK) & b


def por(a: int, b: int) -> int:
    """Bitwise OR (``por``)."""
    if swar._validate:
        check_word(a), check_word(b)
    return a | b


def pxor(a: int, b: int) -> int:
    """Bitwise XOR (``pxor``); ``pxor r, r`` is the canonical register clear."""
    if swar._validate:
        check_word(a), check_word(b)
    return a ^ b

"""Packed multiply semantics: ``pmullw``, ``pmulhw`` and ``pmaddwd``.

``pmaddwd`` is the workhorse of the paper's FIR/DCT/matrix kernels (§2,
Figure 1): four 16-bit products are formed lane-by-lane and adjacent pairs of
32-bit products are summed into two 32-bit results.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LaneError
from repro.simd import lanes


def pmullw(a: int, b: int) -> int:
    """Low 16 bits of the four signed 16-bit products."""
    la = lanes.split(a, 16, signed=True).astype(np.int64)
    lb = lanes.split(b, 16, signed=True).astype(np.int64)
    return lanes.join(la * lb, 16)


def pmulhw(a: int, b: int) -> int:
    """High 16 bits of the four signed 16-bit products."""
    la = lanes.split(a, 16, signed=True).astype(np.int64)
    lb = lanes.split(b, 16, signed=True).astype(np.int64)
    return lanes.join((la * lb) >> 16, 16)


def pmulhuw(a: int, b: int) -> int:
    """High 16 bits of the four unsigned 16-bit products."""
    la = lanes.split(a, 16).astype(np.int64)
    lb = lanes.split(b, 16).astype(np.int64)
    return lanes.join((la * lb) >> 16, 16)


def pmaddwd(a: int, b: int) -> int:
    """Packed multiply-add: pairwise sums of signed 16-bit products.

    Result lane 0 = ``a0*b0 + a1*b1`` and lane 1 = ``a2*b2 + a3*b3`` as 32-bit
    values (wrap-around on the theoretical overflow case ``(-32768)**2 * 2``).
    """
    la = lanes.split(a, 16, signed=True).astype(np.int64)
    lb = lanes.split(b, 16, signed=True).astype(np.int64)
    prod = la * lb
    sums = prod[0::2] + prod[1::2]
    return lanes.join(sums, 32)


def pmuludq(a: int, b: int) -> int:
    """Unsigned multiply of the low 32-bit lanes into a 64-bit product."""
    la = int(lanes.split(a, 32)[0])
    lb = int(lanes.split(b, 32)[0])
    return (la * lb) & lanes.WORD_MASK


def pmul_widening(a: int, b: int, width: int, *, signed: bool = True) -> tuple[int, int]:
    """Generic widening multiply, returning ``(low_word, high_word)``.

    ``low_word`` packs the low halves of each double-width product and
    ``high_word`` the high halves — the (``pmullw``, ``pmulhw``) pair
    generalized to any sub-word width below 64.
    """
    if width >= 64:
        raise LaneError("widening multiply requires width < 64")
    la = lanes.split(a, width, signed=signed).astype(np.int64)
    lb = lanes.split(b, width, signed=signed).astype(np.int64)
    prod = la * lb
    low = prod & ((1 << width) - 1)
    high = (prod >> width) & ((1 << width) - 1)
    return lanes.join(low, width), lanes.join(high, width)

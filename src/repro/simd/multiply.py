"""Packed multiply semantics: ``pmullw``, ``pmulhw`` and ``pmaddwd``.

``pmaddwd`` is the workhorse of the paper's FIR/DCT/matrix kernels (§2,
Figure 1): four 16-bit products are formed lane-by-lane and adjacent pairs of
32-bit products are summed into two 32-bit results.

Unlike the add/compare family, lane products genuinely widen, so there is no
single-expression SWAR trick; each op walks the (at most four) lanes with
shift-and-mask extraction on the packed word — still allocation-free, still
plain Python ints.
"""

from __future__ import annotations

from repro.errors import LaneError
from repro.simd import swar
from repro.simd.lanes import WORD_MASK, check_word
from repro.simd.swar import MASKS


def pmullw(a: int, b: int) -> int:
    """Low 16 bits of the four signed 16-bit products.

    Signedness cannot affect the low half modulo 2^16, so no sign extension
    is needed.
    """
    if swar._validate:
        check_word(a), check_word(b)
    out = 0
    for shift in (0, 16, 32, 48):
        prod = ((a >> shift) & 0xFFFF) * ((b >> shift) & 0xFFFF)
        out |= (prod & 0xFFFF) << shift
    return out


def pmulhw(a: int, b: int) -> int:
    """High 16 bits of the four signed 16-bit products."""
    if swar._validate:
        check_word(a), check_word(b)
    out = 0
    for shift in (0, 16, 32, 48):
        x = (a >> shift) & 0xFFFF
        y = (b >> shift) & 0xFFFF
        x -= (x & 0x8000) << 1
        y -= (y & 0x8000) << 1
        out |= (((x * y) >> 16) & 0xFFFF) << shift
    return out


def pmulhuw(a: int, b: int) -> int:
    """High 16 bits of the four unsigned 16-bit products."""
    if swar._validate:
        check_word(a), check_word(b)
    out = 0
    for shift in (0, 16, 32, 48):
        prod = ((a >> shift) & 0xFFFF) * ((b >> shift) & 0xFFFF)
        out |= ((prod >> 16) & 0xFFFF) << shift
    return out


def pmaddwd(a: int, b: int) -> int:
    """Packed multiply-add: pairwise sums of signed 16-bit products.

    Result lane 0 = ``a0*b0 + a1*b1`` and lane 1 = ``a2*b2 + a3*b3`` as 32-bit
    values (wrap-around on the theoretical overflow case ``(-32768)**2 * 2``).
    """
    if swar._validate:
        check_word(a), check_word(b)
    out = 0
    for shift in (0, 32):
        x0 = (a >> shift) & 0xFFFF
        y0 = (b >> shift) & 0xFFFF
        x1 = (a >> (shift + 16)) & 0xFFFF
        y1 = (b >> (shift + 16)) & 0xFFFF
        x0 -= (x0 & 0x8000) << 1
        y0 -= (y0 & 0x8000) << 1
        x1 -= (x1 & 0x8000) << 1
        y1 -= (y1 & 0x8000) << 1
        out |= ((x0 * y0 + x1 * y1) & 0xFFFFFFFF) << shift
    return out


def pmuludq(a: int, b: int) -> int:
    """Unsigned multiply of the low 32-bit lanes into a 64-bit product."""
    if swar._validate:
        check_word(a), check_word(b)
    return ((a & 0xFFFFFFFF) * (b & 0xFFFFFFFF)) & WORD_MASK


def pmul_widening(a: int, b: int, width: int, *, signed: bool = True) -> tuple[int, int]:
    """Generic widening multiply, returning ``(low_word, high_word)``.

    ``low_word`` packs the low halves of each double-width product and
    ``high_word`` the high halves — the (``pmullw``, ``pmulhw``) pair
    generalized to any sub-word width below 64.
    """
    if width >= 64:
        raise LaneError("widening multiply requires width < 64")
    if swar._validate:
        check_word(a), check_word(b)
    try:
        lane_mask = MASKS[width][0]
    except KeyError:
        raise swar.bad_width(width) from None
    sign_bit = 1 << (width - 1)
    wrap = 1 << width
    low_word = 0
    high_word = 0
    for shift in range(0, 64, width):
        x = (a >> shift) & lane_mask
        y = (b >> shift) & lane_mask
        if signed:
            if x & sign_bit:
                x -= wrap
            if y & sign_bit:
                y -= wrap
        prod = x * y
        low_word |= (prod & lane_mask) << shift
        high_word |= ((prod >> width) & lane_mask) << shift
    return low_word, high_word

"""Pack (with saturation) and unpack/merge instructions.

These are exactly the data-alignment instructions the paper's SPU makes
transparent: ``punpckl*``/``punpckh*`` interleave the low or high halves of
two registers (Figure 2), and ``packss*``/``packus*`` narrow lanes with
saturation.  Over 23% of dynamic instructions in EEMBC consumer benchmarks on
TriMedia are such pack/merge operations (§1).
"""

from __future__ import annotations

import numpy as np

from repro.errors import LaneError
from repro.simd import lanes


def punpckl(a: int, b: int, width: int) -> int:
    """Interleave the *low* lanes of ``a`` and ``b``.

    Result lanes: ``a0, b0, a1, b1, ...`` — the MMX ``punpcklbw`` /
    ``punpcklwd`` / ``punpckldq`` family (destination ``a``, source ``b``).
    """
    if width == 64:
        raise LaneError("unpack requires sub-word width < 64")
    la = lanes.split(a, width)
    lb = lanes.split(b, width)
    n = lanes.lane_count(width) // 2
    out = np.empty(2 * n, dtype=la.dtype)
    out[0::2] = la[:n]
    out[1::2] = lb[:n]
    return lanes.join(out, width)


def punpckh(a: int, b: int, width: int) -> int:
    """Interleave the *high* lanes of ``a`` and ``b`` (``punpckh*`` family)."""
    if width == 64:
        raise LaneError("unpack requires sub-word width < 64")
    la = lanes.split(a, width)
    lb = lanes.split(b, width)
    n = lanes.lane_count(width) // 2
    out = np.empty(2 * n, dtype=la.dtype)
    out[0::2] = la[n:]
    out[1::2] = lb[n:]
    return lanes.join(out, width)


def _pack(a: int, b: int, src_width: int, lo: int, hi: int) -> int:
    dst_width = src_width // 2
    la = lanes.split(a, src_width, signed=True).astype(np.int64)
    lb = lanes.split(b, src_width, signed=True).astype(np.int64)
    vals = np.concatenate([la, lb])
    return lanes.join(np.clip(vals, lo, hi), dst_width)


def packss(a: int, b: int, src_width: int) -> int:
    """Narrow with signed saturation (``packsswb``: 16→8, ``packssdw``: 32→16).

    Low half of the result comes from ``a``, high half from ``b``.
    """
    if src_width not in (16, 32):
        raise LaneError(f"packss source width must be 16 or 32, got {src_width}")
    dst = src_width // 2
    return _pack(a, b, src_width, -(1 << (dst - 1)), (1 << (dst - 1)) - 1)


def packus(a: int, b: int, src_width: int) -> int:
    """Narrow with unsigned saturation (``packuswb``: signed 16 → unsigned 8)."""
    if src_width not in (16, 32):
        raise LaneError(f"packus source width must be 16 or 32, got {src_width}")
    dst = src_width // 2
    return _pack(a, b, src_width, 0, (1 << dst) - 1)


def permute_word(value: int, selector: "list[int | None]", width: int) -> int:
    """General single-word lane permutation (``pshufw``-style, generalized).

    ``selector[i]`` names the source lane for destination lane ``i``; ``None``
    keeps the destination lane unchanged (identity route).  This is the
    single-register special case of what the SPU interconnect provides across
    the whole register file.
    """
    src = lanes.split(value, width)
    n = lanes.lane_count(width)
    if len(selector) != n:
        raise LaneError(f"selector must have {n} entries for width {width}")
    out = src.copy()
    for i, sel in enumerate(selector):
        if sel is None:
            continue
        if not 0 <= sel < n:
            raise LaneError(f"selector entry {sel} out of range for width {width}")
        out[i] = src[sel]
    return lanes.join(out, width)

"""Pack (with saturation) and unpack/merge instructions.

These are exactly the data-alignment instructions the paper's SPU makes
transparent: ``punpckl*``/``punpckh*`` interleave the low or high halves of
two registers (Figure 2), and ``packss*``/``packus*`` narrow lanes with
saturation.  Over 23% of dynamic instructions in EEMBC consumer benchmarks on
TriMedia are such pack/merge operations (§1).

Pure lane rearrangement has no arithmetic to vectorize, so these walk the
lanes with shift-and-mask extraction on the packed 64-bit int directly.
"""

from __future__ import annotations

from repro.errors import LaneError
from repro.simd import swar
from repro.simd.lanes import check_word
from repro.simd.swar import MASKS


def punpckl(a: int, b: int, width: int) -> int:
    """Interleave the *low* lanes of ``a`` and ``b``.

    Result lanes: ``a0, b0, a1, b1, ...`` — the MMX ``punpcklbw`` /
    ``punpcklwd`` / ``punpckldq`` family (destination ``a``, source ``b``).
    """
    if swar._validate:
        check_word(a), check_word(b)
    try:
        lane_mask = MASKS[width][0]
    except KeyError:
        raise swar.bad_width(width) from None
    if width == 64:
        raise LaneError("unpack requires sub-word width < 64")
    out = 0
    position = 0
    for shift in range(0, 32, width):
        out |= ((a >> shift) & lane_mask) << position
        position += width
        out |= ((b >> shift) & lane_mask) << position
        position += width
    return out


def punpckh(a: int, b: int, width: int) -> int:
    """Interleave the *high* lanes of ``a`` and ``b`` (``punpckh*`` family)."""
    if swar._validate:
        check_word(a), check_word(b)
    try:
        lane_mask = MASKS[width][0]
    except KeyError:
        raise swar.bad_width(width) from None
    if width == 64:
        raise LaneError("unpack requires sub-word width < 64")
    out = 0
    position = 0
    for shift in range(32, 64, width):
        out |= ((a >> shift) & lane_mask) << position
        position += width
        out |= ((b >> shift) & lane_mask) << position
        position += width
    return out


def _pack(a: int, b: int, src_width: int, lo: int, hi: int) -> int:
    if swar._validate:
        check_word(a), check_word(b)
    dst_width = src_width // 2
    src_mask = (1 << src_width) - 1
    dst_mask = (1 << dst_width) - 1
    sign_bit = 1 << (src_width - 1)
    wrap = 1 << src_width
    out = 0
    position = 0
    for word in (a, b):
        for shift in range(0, 64, src_width):
            value = (word >> shift) & src_mask
            if value & sign_bit:
                value -= wrap
            if value < lo:
                value = lo
            elif value > hi:
                value = hi
            out |= (value & dst_mask) << position
            position += dst_width
    return out


def packss(a: int, b: int, src_width: int) -> int:
    """Narrow with signed saturation (``packsswb``: 16→8, ``packssdw``: 32→16).

    Low half of the result comes from ``a``, high half from ``b``.
    """
    if src_width not in (16, 32):
        raise LaneError(f"packss source width must be 16 or 32, got {src_width}")
    dst = src_width // 2
    return _pack(a, b, src_width, -(1 << (dst - 1)), (1 << (dst - 1)) - 1)


def packus(a: int, b: int, src_width: int) -> int:
    """Narrow with unsigned saturation (``packuswb``: signed 16 → unsigned 8)."""
    if src_width not in (16, 32):
        raise LaneError(f"packus source width must be 16 or 32, got {src_width}")
    dst = src_width // 2
    return _pack(a, b, src_width, 0, (1 << dst) - 1)


def permute_word(value: int, selector: "list[int | None]", width: int) -> int:
    """General single-word lane permutation (``pshufw``-style, generalized).

    ``selector[i]`` names the source lane for destination lane ``i``; ``None``
    keeps the destination lane unchanged (identity route).  This is the
    single-register special case of what the SPU interconnect provides across
    the whole register file.
    """
    if swar._validate:
        check_word(value)
    try:
        lane_mask = MASKS[width][0]
    except KeyError:
        raise swar.bad_width(width) from None
    n = 64 // width
    if len(selector) != n:
        raise LaneError(f"selector must have {n} entries for width {width}")
    out = 0
    for i, sel in enumerate(selector):
        if sel is None:
            lane = (value >> (i * width)) & lane_mask
        else:
            if not 0 <= sel < n:
                raise LaneError(f"selector entry {sel} out of range for width {width}")
            lane = (value >> (sel * width)) & lane_mask
        out |= lane << (i * width)
    return out

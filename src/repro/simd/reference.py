"""NumPy reference semantics for every packed operation — the oracle.

These are the original lane-vector implementations of the :mod:`repro.simd`
API, preserved verbatim when the production ops were rewritten as pure-integer
SWAR algorithms.  They stay the independent ground truth: the property suite
(``tests/simd/test_swar_equivalence.py``), the ``repro check --swar-check``
campaign guard, and the sim-speed benchmark all diff the SWAR path against
this module, and :func:`repro.simd.use_backend` can point the executor at it
to measure or debug against the pre-SWAR data path.

Every public function here carries the same name and signature as its SWAR
twin, so either module satisfies the executor's dispatch tables.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LaneError
from repro.simd import lanes

# --- arithmetic --------------------------------------------------------------


def _signed_limits(width: int) -> tuple[int, int]:
    lo = -(1 << (width - 1))
    hi = (1 << (width - 1)) - 1
    return lo, hi


def padd(a: int, b: int, width: int) -> int:
    """Packed add with wrap-around (``paddb``/``paddw``/``paddd``/``paddq``)."""
    la = lanes.split(a, width).astype(np.int64)
    lb = lanes.split(b, width).astype(np.int64)
    return lanes.join(la + lb, width)


def psub(a: int, b: int, width: int) -> int:
    """Packed subtract with wrap-around (``psubb``/``psubw``/``psubd``)."""
    la = lanes.split(a, width).astype(np.int64)
    lb = lanes.split(b, width).astype(np.int64)
    return lanes.join(la - lb, width)


def padds(a: int, b: int, width: int) -> int:
    """Packed add with signed saturation (``paddsb``/``paddsw``)."""
    lo, hi = _signed_limits(width)
    la = lanes.split(a, width, signed=True).astype(np.int64)
    lb = lanes.split(b, width, signed=True).astype(np.int64)
    return lanes.join(np.clip(la + lb, lo, hi), width)


def psubs(a: int, b: int, width: int) -> int:
    """Packed subtract with signed saturation (``psubsb``/``psubsw``)."""
    lo, hi = _signed_limits(width)
    la = lanes.split(a, width, signed=True).astype(np.int64)
    lb = lanes.split(b, width, signed=True).astype(np.int64)
    return lanes.join(np.clip(la - lb, lo, hi), width)


def paddus(a: int, b: int, width: int) -> int:
    """Packed add with unsigned saturation (``paddusb``/``paddusw``)."""
    hi = (1 << width) - 1
    la = lanes.split(a, width).astype(np.int64)
    lb = lanes.split(b, width).astype(np.int64)
    return lanes.join(np.clip(la + lb, 0, hi), width)


def psubus(a: int, b: int, width: int) -> int:
    """Packed subtract with unsigned saturation (``psubusb``/``psubusw``)."""
    hi = (1 << width) - 1
    la = lanes.split(a, width).astype(np.int64)
    lb = lanes.split(b, width).astype(np.int64)
    return lanes.join(np.clip(la - lb, 0, hi), width)


def pavg(a: int, b: int, width: int) -> int:
    """Packed unsigned average with rounding (``pavgb``/``pavgw``)."""
    la = lanes.split(a, width).astype(np.int64)
    lb = lanes.split(b, width).astype(np.int64)
    return lanes.join((la + lb + 1) >> 1, width)


def pmin(a: int, b: int, width: int, *, signed: bool) -> int:
    """Packed per-lane minimum (``pminub``/``pminsw`` family)."""
    la = lanes.split(a, width, signed=signed).astype(np.int64)
    lb = lanes.split(b, width, signed=signed).astype(np.int64)
    return lanes.join(np.minimum(la, lb), width)


def pmax(a: int, b: int, width: int, *, signed: bool) -> int:
    """Packed per-lane maximum (``pmaxub``/``pmaxsw`` family)."""
    la = lanes.split(a, width, signed=signed).astype(np.int64)
    lb = lanes.split(b, width, signed=signed).astype(np.int64)
    return lanes.join(np.maximum(la, lb), width)


# --- multiplies --------------------------------------------------------------


def pmullw(a: int, b: int) -> int:
    """Low 16 bits of the four signed 16-bit products."""
    la = lanes.split(a, 16, signed=True).astype(np.int64)
    lb = lanes.split(b, 16, signed=True).astype(np.int64)
    return lanes.join(la * lb, 16)


def pmulhw(a: int, b: int) -> int:
    """High 16 bits of the four signed 16-bit products."""
    la = lanes.split(a, 16, signed=True).astype(np.int64)
    lb = lanes.split(b, 16, signed=True).astype(np.int64)
    return lanes.join((la * lb) >> 16, 16)


def pmulhuw(a: int, b: int) -> int:
    """High 16 bits of the four unsigned 16-bit products."""
    la = lanes.split(a, 16).astype(np.int64)
    lb = lanes.split(b, 16).astype(np.int64)
    return lanes.join((la * lb) >> 16, 16)


def pmaddwd(a: int, b: int) -> int:
    """Packed multiply-add: pairwise sums of signed 16-bit products."""
    la = lanes.split(a, 16, signed=True).astype(np.int64)
    lb = lanes.split(b, 16, signed=True).astype(np.int64)
    prod = la * lb
    sums = prod[0::2] + prod[1::2]
    return lanes.join(sums, 32)


def pmuludq(a: int, b: int) -> int:
    """Unsigned multiply of the low 32-bit lanes into a 64-bit product."""
    la = int(lanes.split(a, 32)[0])
    lb = int(lanes.split(b, 32)[0])
    return (la * lb) & lanes.WORD_MASK


def pmul_widening(a: int, b: int, width: int, *, signed: bool = True) -> tuple[int, int]:
    """Generic widening multiply, returning ``(low_word, high_word)``."""
    if width >= 64:
        raise LaneError("widening multiply requires width < 64")
    la = lanes.split(a, width, signed=signed).astype(np.int64)
    lb = lanes.split(b, width, signed=signed).astype(np.int64)
    prod = la * lb
    low = prod & ((1 << width) - 1)
    high = (prod >> width) & ((1 << width) - 1)
    return lanes.join(low, width), lanes.join(high, width)


# --- pack / unpack / permute -------------------------------------------------


def punpckl(a: int, b: int, width: int) -> int:
    """Interleave the *low* lanes of ``a`` and ``b`` (``punpckl*`` family)."""
    if width == 64:
        raise LaneError("unpack requires sub-word width < 64")
    la = lanes.split(a, width)
    lb = lanes.split(b, width)
    n = lanes.lane_count(width) // 2
    out = np.empty(2 * n, dtype=la.dtype)
    out[0::2] = la[:n]
    out[1::2] = lb[:n]
    return lanes.join(out, width)


def punpckh(a: int, b: int, width: int) -> int:
    """Interleave the *high* lanes of ``a`` and ``b`` (``punpckh*`` family)."""
    if width == 64:
        raise LaneError("unpack requires sub-word width < 64")
    la = lanes.split(a, width)
    lb = lanes.split(b, width)
    n = lanes.lane_count(width) // 2
    out = np.empty(2 * n, dtype=la.dtype)
    out[0::2] = la[n:]
    out[1::2] = lb[n:]
    return lanes.join(out, width)


def _pack(a: int, b: int, src_width: int, lo: int, hi: int) -> int:
    dst_width = src_width // 2
    la = lanes.split(a, src_width, signed=True).astype(np.int64)
    lb = lanes.split(b, src_width, signed=True).astype(np.int64)
    vals = np.concatenate([la, lb])
    return lanes.join(np.clip(vals, lo, hi), dst_width)


def packss(a: int, b: int, src_width: int) -> int:
    """Narrow with signed saturation (``packsswb``: 16→8, ``packssdw``: 32→16)."""
    if src_width not in (16, 32):
        raise LaneError(f"packss source width must be 16 or 32, got {src_width}")
    dst = src_width // 2
    return _pack(a, b, src_width, -(1 << (dst - 1)), (1 << (dst - 1)) - 1)


def packus(a: int, b: int, src_width: int) -> int:
    """Narrow with unsigned saturation (``packuswb``: signed 16 → unsigned 8)."""
    if src_width not in (16, 32):
        raise LaneError(f"packus source width must be 16 or 32, got {src_width}")
    dst = src_width // 2
    return _pack(a, b, src_width, 0, (1 << dst) - 1)


def permute_word(value: int, selector: "list[int | None]", width: int) -> int:
    """General single-word lane permutation (``pshufw``-style, generalized)."""
    src = lanes.split(value, width)
    n = lanes.lane_count(width)
    if len(selector) != n:
        raise LaneError(f"selector must have {n} entries for width {width}")
    out = src.copy()
    for i, sel in enumerate(selector):
        if sel is None:
            continue
        if not 0 <= sel < n:
            raise LaneError(f"selector entry {sel} out of range for width {width}")
        out[i] = src[sel]
    return lanes.join(out, width)


# --- shifts ------------------------------------------------------------------


def _check_count(count: int) -> int:
    count = int(count)
    if count < 0:
        raise LaneError(f"negative shift count {count}")
    return count


def psll(value: int, count: int, width: int) -> int:
    """Packed shift left logical; counts ≥ width produce zero lanes."""
    count = _check_count(count)
    if count >= width:
        return 0
    if width == 64:
        return (lanes.check_word(value) << count) & lanes.WORD_MASK
    la = lanes.split(value, width).astype(np.int64)
    return lanes.join(la << count, width)


def psrl(value: int, count: int, width: int) -> int:
    """Packed shift right logical; counts ≥ width produce zero lanes."""
    count = _check_count(count)
    if count >= width:
        return 0
    if width == 64:
        return lanes.check_word(value) >> count
    la = lanes.split(value, width).astype(np.int64)
    return lanes.join(la >> count, width)


def psra(value: int, count: int, width: int) -> int:
    """Packed shift right arithmetic; counts ≥ width replicate the sign bit."""
    if width == 64:
        raise LaneError("MMX has no 64-bit arithmetic right shift")
    count = _check_count(count)
    la = lanes.split(value, width, signed=True).astype(np.int64)
    count = min(count, width - 1)
    return lanes.join(la >> count, width)


def psllq_bytes(value: int, nbytes: int) -> int:
    """Whole-register byte shift left (``psllq`` with a multiple-of-8 count)."""
    if nbytes < 0:
        raise LaneError(f"negative byte shift {nbytes}")
    if nbytes >= lanes.WORD_BYTES:
        return 0
    return (lanes.check_word(value) << (8 * nbytes)) & lanes.WORD_MASK


def psrlq_bytes(value: int, nbytes: int) -> int:
    """Whole-register byte shift right (``psrlq`` with a multiple-of-8 count)."""
    if nbytes < 0:
        raise LaneError(f"negative byte shift {nbytes}")
    if nbytes >= lanes.WORD_BYTES:
        return 0
    return lanes.check_word(value) >> (8 * nbytes)


# --- compares ----------------------------------------------------------------


def pcmpeq(a: int, b: int, width: int) -> int:
    """Per-lane equality: lanes become ``0xFF..F`` when equal, else 0."""
    la = lanes.split(a, width)
    lb = lanes.split(b, width)
    mask = np.where(la == lb, -1, 0)
    return lanes.join(mask, width)


def pcmpgt(a: int, b: int, width: int) -> int:
    """Per-lane *signed* greater-than: ``a > b`` lanes become all ones."""
    la = lanes.split(a, width, signed=True)
    lb = lanes.split(b, width, signed=True)
    mask = np.where(la > lb, -1, 0)
    return lanes.join(mask, width)


# --- logicals ----------------------------------------------------------------


def pand(a: int, b: int) -> int:
    """Bitwise AND (``pand``)."""
    return lanes.check_word(a) & lanes.check_word(b)


def pandn(a: int, b: int) -> int:
    """AND-NOT: ``(~a) & b`` — destination operand is inverted (``pandn``)."""
    return (~lanes.check_word(a) & lanes.WORD_MASK) & lanes.check_word(b)


def por(a: int, b: int) -> int:
    """Bitwise OR (``por``)."""
    return lanes.check_word(a) | lanes.check_word(b)


def pxor(a: int, b: int) -> int:
    """Bitwise XOR (``pxor``); ``pxor r, r`` is the canonical register clear."""
    return lanes.check_word(a) ^ lanes.check_word(b)

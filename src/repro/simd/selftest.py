"""Seeded SWAR-vs-reference sample differ (``repro check --swar-check``).

The fault-injection harness validates the *simulator* end to end; this
module spot-checks the *data-path model itself*: every public packed op is
evaluated on a seeded stream of operand words through both backends — the
integer SWAR implementation (:mod:`repro.simd`) and the NumPy lane-vector
oracle (:mod:`repro.simd.reference`) — and any disagreement is a mismatch.

Operand words mix adversarial patterns (the carry-break corner cases:
all-zeros, all-ones, the per-lane MSB/sign-max columns, alternating bytes)
with ``random.Random(seed)`` draws, so campaigns with the same seed diff the
same samples.  The exhaustive, shrinking version of this check lives in
``tests/simd/test_swar_equivalence.py``; this one is cheap enough to ride
along with every ``repro check --swar-check`` run.
"""

from __future__ import annotations

import random
from typing import Any, Callable

from repro import simd
from repro.simd import reference
from repro.simd.lanes import LANE_WIDTHS, WORD_MASK
from repro.simd.swar import MASKS

#: Carry-break corner words every op is tried on (per sampled pair).
ADVERSARIAL_WORDS = (
    0,
    WORD_MASK,
    0x8080_8080_8080_8080,  # per-lane MSB column (width 8)
    0x7F7F_7F7F_7F7F_7F7F,  # per-lane signed max (width 8)
    0x8000_8000_8000_8000,  # per-lane MSB column (width 16)
    0x0101_0101_0101_0101,  # low-bit column
    0xAAAA_AAAA_AAAA_AAAA,
    0x5555_5555_5555_5555,
    0xFF00_FF00_FF00_FF00,
    0x0000_0000_FFFF_FFFF,
)

#: op name -> (argument builder, widths it accepts).  The builder maps a
#: sampled ``(a, b, rng)`` triple to the op's positional/keyword arguments.
_TWO_WORDS = lambda a, b, rng: ((a, b), {})  # noqa: E731
_SHIFT = lambda a, b, rng: ((a, rng.choice((0, 1, 7, 8, 15, 31, 63, 64))), {})  # noqa: E731

_CATALOG: dict[str, tuple[Callable, tuple[int, ...]]] = {
    # width-taking binary ops, every lane width
    "padd": (_TWO_WORDS, LANE_WIDTHS),
    "psub": (_TWO_WORDS, LANE_WIDTHS),
    "padds": (_TWO_WORDS, LANE_WIDTHS),
    "psubs": (_TWO_WORDS, LANE_WIDTHS),
    "paddus": (_TWO_WORDS, LANE_WIDTHS),
    "psubus": (_TWO_WORDS, LANE_WIDTHS),
    "pavg": (_TWO_WORDS, LANE_WIDTHS),
    "pcmpeq": (_TWO_WORDS, LANE_WIDTHS),
    "pcmpgt": (_TWO_WORDS, LANE_WIDTHS),
    "punpckl": (_TWO_WORDS, (8, 16, 32)),
    "punpckh": (_TWO_WORDS, (8, 16, 32)),
    "packss": (_TWO_WORDS, (16, 32)),
    "packus": (_TWO_WORDS, (16, 32)),
    # signed/unsigned min-max
    "pmin": (lambda a, b, rng: ((a, b), {"signed": rng.random() < 0.5}),
             LANE_WIDTHS),
    "pmax": (lambda a, b, rng: ((a, b), {"signed": rng.random() < 0.5}),
             LANE_WIDTHS),
    # widthless 16-bit multiplies and logicals
    "pmullw": (_TWO_WORDS, ()),
    "pmulhw": (_TWO_WORDS, ()),
    "pmulhuw": (_TWO_WORDS, ()),
    "pmaddwd": (_TWO_WORDS, ()),
    "pmuludq": (_TWO_WORDS, ()),
    "pand": (_TWO_WORDS, ()),
    "pandn": (_TWO_WORDS, ()),
    "por": (_TWO_WORDS, ()),
    "pxor": (_TWO_WORDS, ()),
    # shifts: second word is replaced by a sampled count
    "psll": (_SHIFT, (16, 32, 64)),
    "psrl": (_SHIFT, (16, 32, 64)),
    "psra": (_SHIFT, (16, 32)),
}


def _word_stream(rng: random.Random, samples: int):
    """``samples`` operand pairs: adversarial corners first, then random."""
    corners = ADVERSARIAL_WORDS
    for a in corners:
        for b in (0, WORD_MASK, a, MASKS[8][2]):
            yield a, b
    for _ in range(samples):
        yield rng.getrandbits(64), rng.getrandbits(64)


def sample_diff(seed: int = 0, samples: int = 32,
                max_failures: int = 8) -> dict[str, Any]:
    """Diff every cataloged op over a seeded operand stream.

    Returns ``{"seed", "samples", "mismatches", "failures"}`` where
    ``samples`` counts evaluated (op, width, operands) triples and
    ``failures`` details the first ``max_failures`` disagreements — a
    mismatched result or an exception raised by exactly one backend.
    """
    rng = random.Random(f"swar-check:{seed}")
    pairs = list(_word_stream(rng, samples))
    total = 0
    mismatches = 0
    failures: list[dict[str, Any]] = []

    def _record(op, width, a, b, got, want):
        nonlocal mismatches
        mismatches += 1
        if len(failures) < max_failures:
            failures.append({
                "op": op, "width": width,
                "a": f"{a:#018x}", "b": f"{b:#018x}",
                "swar": repr(got), "reference": repr(want),
            })

    for op, (build, widths) in _CATALOG.items():
        fast = getattr(simd, op)
        oracle = getattr(reference, op)
        for a, b in pairs:
            args, kwargs = build(a, b, rng)
            for width in widths or (None,):
                extra = args if width is None else (*args, width)
                total += 1
                try:
                    got: Any = fast(*extra, **kwargs)
                except Exception as exc:  # pragma: no cover - equivalence gap
                    got = f"raised {type(exc).__name__}"
                try:
                    want: Any = oracle(*extra, **kwargs)
                except Exception as exc:  # pragma: no cover - equivalence gap
                    want = f"raised {type(exc).__name__}"
                if got != want:
                    _record(op, width, a, b, got, want)
    return {
        "seed": seed,
        "samples": total,
        "mismatches": mismatches,
        "failures": failures,
    }

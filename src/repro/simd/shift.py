"""Packed shift instructions (``psll*``, ``psrl*``, ``psra*``).

Shift counts ≥ the lane width zero the result (or fill with the sign for
arithmetic right shifts), matching the Intel semantics.

SWAR forms: one whole-word shift, then a single AND against the per-lane
"surviving bits" pattern (the shifted lane mask replicated into every lane by
the ``low`` repeat constant) removes everything that crossed a lane boundary.
The arithmetic right shift ORs the sign-replication pattern back in.
"""

from __future__ import annotations

from repro.errors import LaneError
from repro.simd import swar
from repro.simd.lanes import WORD_BYTES, WORD_MASK, check_word
from repro.simd.swar import MASKS


def _check_count(count: int) -> int:
    count = int(count)
    if count < 0:
        raise LaneError(f"negative shift count {count}")
    return count


def psll(value: int, count: int, width: int) -> int:
    """Packed shift left logical; counts ≥ width produce zero lanes."""
    if swar._validate:
        check_word(value)
    try:
        lane_mask, low, _, _, _ = MASKS[width]
    except KeyError:
        raise swar.bad_width(width) from None
    count = _check_count(count)
    if count >= width:
        return 0
    if width == 64:
        return (value << count) & WORD_MASK
    return (value << count) & (low * ((lane_mask << count) & lane_mask))


def psrl(value: int, count: int, width: int) -> int:
    """Packed shift right logical; counts ≥ width produce zero lanes."""
    if swar._validate:
        check_word(value)
    try:
        lane_mask, low, _, _, _ = MASKS[width]
    except KeyError:
        raise swar.bad_width(width) from None
    count = _check_count(count)
    if count >= width:
        return 0
    if width == 64:
        return value >> count
    return (value >> count) & (low * (lane_mask >> count))


def psra(value: int, count: int, width: int) -> int:
    """Packed shift right arithmetic; counts ≥ width replicate the sign bit."""
    if width == 64:
        raise LaneError("MMX has no 64-bit arithmetic right shift")
    if swar._validate:
        check_word(value)
    try:
        lane_mask, low, high, _, _ = MASKS[width]
    except KeyError:
        raise swar.bad_width(width) from None
    count = min(_check_count(count), width - 1)
    shifted = (value >> count) & (low * (lane_mask >> count))
    # Per-lane sign replication: all-ones lanes where the MSB was set,
    # restricted to the `count` vacated top bits of each lane.
    sign = ((value & high) >> (width - 1)) * lane_mask
    fill = low * (((lane_mask >> (width - count)) << (width - count)) & lane_mask)
    return shifted | (sign & fill)


def psllq_bytes(value: int, nbytes: int) -> int:
    """Whole-register byte shift left (``psllq`` with a multiple-of-8 count)."""
    if swar._validate:
        check_word(value)
    if nbytes < 0:
        raise LaneError(f"negative byte shift {nbytes}")
    if nbytes >= WORD_BYTES:
        return 0
    return (value << (8 * nbytes)) & WORD_MASK


def psrlq_bytes(value: int, nbytes: int) -> int:
    """Whole-register byte shift right (``psrlq`` with a multiple-of-8 count)."""
    if swar._validate:
        check_word(value)
    if nbytes < 0:
        raise LaneError(f"negative byte shift {nbytes}")
    if nbytes >= WORD_BYTES:
        return 0
    return value >> (8 * nbytes)

"""Packed shift instructions (``psll*``, ``psrl*``, ``psra*``).

Shift counts ≥ the lane width zero the result (or fill with the sign for
arithmetic right shifts), matching the Intel semantics.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LaneError
from repro.simd import lanes


def _check_count(count: int) -> int:
    count = int(count)
    if count < 0:
        raise LaneError(f"negative shift count {count}")
    return count


def psll(value: int, count: int, width: int) -> int:
    """Packed shift left logical; counts ≥ width produce zero lanes."""
    count = _check_count(count)
    if count >= width:
        return 0
    if width == 64:
        # Whole-word shift in Python ints: a 64-bit lane does not fit the
        # signed int64 path without reinterpretation headaches.
        return (lanes.check_word(value) << count) & lanes.WORD_MASK
    la = lanes.split(value, width).astype(np.int64)
    return lanes.join(la << count, width)


def psrl(value: int, count: int, width: int) -> int:
    """Packed shift right logical; counts ≥ width produce zero lanes."""
    count = _check_count(count)
    if count >= width:
        return 0
    if width == 64:
        # Logical shift must not sign-fill: going through int64 would turn
        # an MSB-set word negative and smear ones into the top bits.
        return lanes.check_word(value) >> count
    la = lanes.split(value, width).astype(np.int64)
    return lanes.join(la >> count, width)


def psra(value: int, count: int, width: int) -> int:
    """Packed shift right arithmetic; counts ≥ width replicate the sign bit."""
    if width == 64:
        raise LaneError("MMX has no 64-bit arithmetic right shift")
    count = _check_count(count)
    la = lanes.split(value, width, signed=True).astype(np.int64)
    count = min(count, width - 1)
    return lanes.join(la >> count, width)


def psllq_bytes(value: int, nbytes: int) -> int:
    """Whole-register byte shift left (``psllq`` with a multiple-of-8 count)."""
    if nbytes < 0:
        raise LaneError(f"negative byte shift {nbytes}")
    if nbytes >= lanes.WORD_BYTES:
        return 0
    return (lanes.check_word(value) << (8 * nbytes)) & lanes.WORD_MASK


def psrlq_bytes(value: int, nbytes: int) -> int:
    """Whole-register byte shift right (``psrlq`` with a multiple-of-8 count)."""
    if nbytes < 0:
        raise LaneError(f"negative byte shift {nbytes}")
    if nbytes >= lanes.WORD_BYTES:
        return 0
    return lanes.check_word(value) >> (8 * nbytes)

"""Shared SWAR machinery: per-width mask constants and the validation toggle.

The packed-op modules (:mod:`repro.simd.arithmetic` and friends) compute every
lane of a 64-bit word at once on plain Python ints — the same carry-break
masking tricks the paper's §2 describes MMX hardware using.  All of them need
the same four per-width constants, precomputed here once:

``lane_mask``
    All ones across a single lane (``0xFF`` at width 8).
``low``
    The low bit of every lane (``0x0101_0101_0101_0101`` at width 8) — the
    "lane repeat" constant; multiplying a single lane value by it broadcasts
    the value, and multiplying a lane-MSB column shifted down to bit 0 by it
    spreads each MSB into an all-ones/all-zeros lane mask.
``high``
    The MSB of every lane (``0x8080...``): the carry-break column.
``not_high``
    Complement of ``high`` within 64 bits.
``signed_max``
    The per-lane signed maximum pattern (``0x7F7F...``); adding the sign
    column of an operand turns it into the correct saturation value per lane
    (``0x80`` for negative lanes).

Validation policy (see ``docs/performance.md``): the ops themselves no longer
range-check their word operands on every call — words coming from the
register file, memory, or the assembler are validated/masked at those API
boundaries instead.  :func:`set_validation` (or the :func:`full_validation`
context manager) re-enables per-call :func:`repro.simd.lanes.check_word`
validation inside every packed op; the fault-injection harness runs campaigns
under it so a corrupted value can never propagate silently through the
data-path model.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.errors import LaneError
from repro.simd.lanes import LANE_WIDTHS, WORD_MASK


def _mask_row(width: int) -> tuple[int, int, int, int, int]:
    lane_mask = (1 << width) - 1
    low = WORD_MASK // lane_mask
    high = low << (width - 1)
    return (lane_mask, low, high, WORD_MASK ^ high, low * (lane_mask >> 1))


#: width -> (lane_mask, low, high, not_high, signed_max); see module docstring.
MASKS: dict[int, tuple[int, int, int, int, int]] = {
    width: _mask_row(width) for width in LANE_WIDTHS
}


def bad_width(width: int) -> LaneError:
    """The error a packed op raises for an unsupported sub-word width."""
    return LaneError(
        f"illegal sub-word width {width}; expected one of {LANE_WIDTHS}"
    )


def ugt_mask(a: int, b: int, width: int) -> int:
    """Per-lane *unsigned* ``a > b`` as all-ones/all-zeros lanes (width < 64).

    Computes ``b - a`` with the borrow chain broken at lane boundaries and
    extracts the per-lane borrow column: a lane borrows exactly when its
    ``a`` lane exceeds its ``b`` lane.
    """
    lane_mask, _, high, not_high, _ = MASKS[width]
    diff = ((b | high) - (a & not_high)) ^ ((b ^ a ^ high) & high)
    borrow = ((~b & a) | ((~b | a) & diff)) & high
    return (borrow >> (width - 1)) * lane_mask


#: When True, every packed op validates its word operands with ``check_word``.
_validate = False


def validation_enabled() -> bool:
    """True when full per-op word validation is on (debug mode)."""
    return _validate


def set_validation(enabled: bool) -> bool:
    """Enable/disable per-op word validation; returns the previous setting."""
    global _validate
    previous = _validate
    _validate = bool(enabled)
    return previous


@contextmanager
def full_validation(enabled: bool = True) -> Iterator[None]:
    """Context manager running its body with per-op validation *enabled*."""
    previous = set_validation(enabled)
    try:
        yield
    finally:
        set_validation(previous)

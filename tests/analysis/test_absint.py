"""Core acceptance for the superop legality engine.

Four layers, mirroring the shipping pipeline:

- *domain*: the affine-scalar and byte-interval lattices used by the
  abstract interpreter;
- *certifier*: known-fusible kernels certify (with full replay-checked
  certificates), known data-dependent kernels are diagnosed with the
  specific blocking ``fx-*`` rule;
- *audit*: the kernel-wide static-vs-dynamic cross-check has zero
  unexplained disagreements and exports byte-stably;
- *surfacing*: ``repro lint`` carries the fx findings, ``repro top``'s
  fusible verdicts are certificate-backed, and the CLI gates exit codes.
"""

import json

from repro.analysis import (
    certify_program,
    check_fusion_certificate,
    fusion_audit,
    fusion_audit_report,
    lint_kernel,
)
from repro.analysis.absint import (
    BLOCKING_RULES,
    FUSION_AUDIT_SCHEMA,
    FUSION_CERT_SCHEMA,
    FusionCertificate,
    loop_entry_state,
)
from repro.analysis.absint.domain import (
    Affine,
    ByteRange,
    ByteWord,
    TOP_WORD,
    ZERO_WORD,
    lane_view,
    swar_status,
    word_from_lanes,
)
from repro.cli import main
from repro.isa import ProgramBuilder
from repro.kernels import make_kernel
from repro.obs.export import trace_variant_profile


class TestAffineDomain:
    def test_algebra(self):
        x = Affine.symbol("r1")
        expr = x.scale(4).offset(12)
        assert expr.coeffs == (("r1", 4),)
        assert expr.const == 12
        assert expr.evaluate({"r1": 100}) == 412
        assert expr.evaluate({}) is None
        assert expr.sub(x.scale(4)).is_constant

    def test_symbol_merge_cancels(self):
        x = Affine.symbol("r1")
        assert x.sub(x).coeffs == ()
        assert x.add(x).coeffs == (("r1", 2),)

    def test_byte_word_lattice(self):
        assert ZERO_WORD[0] == (0, 0)
        assert TOP_WORD[0] == (0, 255)
        lanes = lane_view(ZERO_WORD, 16)
        assert all(lane == (0, 0) for lane in lanes)
        word = word_from_lanes([(7, 7)] * 4, 16)
        assert lane_view(word, 16)[0] == (7, 7)

    def test_swar_status_taxonomy(self):
        assert swar_status("padds") == "saturating"
        assert swar_status("padd") == "modular"
        assert swar_status("pand") == "exact"


class TestPrefixWalk:
    def test_concrete_entry_state(self):
        b = ProgramBuilder("prefix")
        b.mov("r0", 8)
        b.mov("r1", 0x400)
        b.add("r1", 0x10)
        b.label("loop")
        b.add("r1", 4)
        b.loop("r0", "loop")
        b.halt()
        program = b.build()
        from repro.analysis.loops import find_loop_regions

        regions = find_loop_regions(program)
        scalars, zeroed = loop_entry_state(program, regions[0].start, regions)
        assert scalars["r0"] == 8
        assert scalars["r1"] == 0x410
        assert zeroed == set()


def certified_region(kernel_name, variant="mmx"):
    kernel = make_kernel(kernel_name)
    if variant == "mmx":
        program = kernel.mmx_program()
    else:
        program, _ = kernel.spu_programs()
    return program, certify_program(
        program, subject=f"{kernel.name}/{variant}"
    )


class TestCertifier:
    def test_dotproduct_certifies(self):
        program, certification = certified_region("DotProduct")
        assert certification.certified_map() == {"loop": []}
        (cert,) = certification.certificates()
        assert cert.schema == FUSION_CERT_SCHEMA
        assert cert.trip == {"kind": "loop", "counter": "r0", "count": 16}
        assert cert.entry["r0"] == 16
        # Every body instruction is pinned verbatim for staleness checks.
        assert len(cert.body) == cert.end - cert.start + 1
        # All four memory streams advance by the packed block size.
        assert {record["stride"] for record in cert.memory} == {16}
        assert {record["status"] for record in cert.swar} >= {"modular"}

    def test_issued_certificate_replays_clean(self):
        program, certification = certified_region("DotProduct")
        (cert,) = certification.certificates()
        assert check_fusion_certificate(cert, program) == []

    def test_certificate_roundtrip(self):
        _, certification = certified_region("SAD")
        (cert,) = certification.certificates()
        assert FusionCertificate.from_dict(cert.as_dict()) == cert

    def test_indirect_addressing_is_diagnosed(self):
        # MatrixTranspose walks a pointer descriptor table: the store base
        # is reloaded from memory each iteration, so its footprint is
        # genuinely indirect and the certificate must be withheld.
        _, certification = certified_region("MatrixTranspose")
        rules = certification.certified_map()["loop"]
        assert "fx-induction-step" in rules
        assert certification.certificates() == []

    def test_blocking_rules_all_registered(self):
        from repro.analysis.rules import RULES

        assert BLOCKING_RULES <= set(RULES)

    def test_certified_kernels_cover_both_variants(self):
        for name in ("DotProduct", "SAD", "FIR12", "ColorSpace"):
            for variant in ("mmx", "spu"):
                _, certification = certified_region(name, variant)
                certified = certification.certified_map()
                assert [] in certified.values(), (name, variant, certified)


class TestAudit:
    def test_cross_check_has_no_unexplained_disagreements(self):
        body = fusion_audit(["DotProduct", "MatrixTranspose", "Viterbi"])
        assert body["summary"]["unexplained"] == 0
        by_loop = {
            (row["kernel"], row["variant"], row["loop"]): row
            for row in body["regions"]
        }
        assert by_loop["DotProduct", "mmx", "loop"]["agreement"] == "certified-agree"
        transpose = by_loop["MatrixTranspose", "mmx", "loop"]
        assert transpose["agreement"] == "static-diagnosed"
        assert "fx-induction-step" in transpose["blocking"]

    def test_report_is_byte_stable(self):
        first = fusion_audit_report(["DotProduct", "SAD"])
        second = fusion_audit_report(["DotProduct", "SAD"])
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )
        assert first["schema"] == FUSION_AUDIT_SCHEMA
        assert first["kind"] == "fusion-audit"


class TestSurfacing:
    def test_lint_carries_fx_findings(self):
        result = lint_kernel("MatrixMultiply")
        fx = [f for f in result.findings if f.rule.startswith("fx-")]
        assert fx, "superop diagnoses must surface through repro lint"
        assert all(f.loop is not None for f in fx)
        assert {f.rule for f in fx} >= {"fx-induction-step"}

    def test_fusible_verdicts_are_certificate_backed(self):
        kernel = make_kernel("MatrixMultiply")
        body = trace_variant_profile(kernel, "mmx")
        certified = {
            label for label, rules in body["certification"].items() if not rules
        }
        for record in body["traces"]:
            fusion = record["fusion"]
            if fusion["fusible"]:
                assert fusion["state"] == "certified"
                assert fusion["loop"] in certified
            elif fusion["state"] == "uncertified":
                # Dynamically clean but statically withheld: the verdict
                # names the withheld certificate, not a dynamic blocker.
                assert any("certificate" in r for r in fusion["reasons"])
        assert body["summary"]["uncertified_traces"] >= 1

    def test_top_fail_on_uncertified(self, capsys):
        assert main(["top", "dotprod", "--fail-on", "uncertified"]) == 0
        assert main(["top", "MatrixMultiply", "--fail-on", "uncertified"]) == 1
        capsys.readouterr()

    def test_top_fail_on_not_fusible(self, capsys):
        # Even a fully certified kernel has structural prologue traces.
        assert main(["top", "dotprod", "--fail-on", "not-fusible"]) == 1
        capsys.readouterr()

    def test_certify_cli_document(self, capsys):
        assert main(["certify", "dotprod", "--json", "-"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == FUSION_AUDIT_SCHEMA
        body = document["data"]
        assert body["summary"]["unexplained"] == 0
        assert all(row["certified"] for row in body["regions"])

    def test_certify_cli_fail_on_uncertified(self, capsys):
        assert main(["certify", "MatrixTranspose", "--fail-on", "uncertified"]) == 1
        capsys.readouterr()

    def test_certify_cli_requires_subject(self, capsys):
        assert main(["certify"]) == 2
        assert "name at least one kernel" in capsys.readouterr().err

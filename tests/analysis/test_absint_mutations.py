"""Seeded loop-body mutations: the certifier must reject each one.

Sensitivity bench for the superop legality engine, mirroring
``test_lint_seeded`` for the microprogram analyzer: take known-fusible
kernel loops (DotProduct, SAD), splice one illegal instruction into the
body, and assert the certificate is withheld with the specific ``fx-*``
rule — plus tamper tests proving the *independent* replay checker catches
certificates that no longer match the program they claim to describe.
"""

from dataclasses import replace

from repro.analysis.absint import (
    FusionCertificate,
    certify_program,
    check_fusion_certificate,
    fusion_certificate_findings,
)
from repro.isa import Program, ProgramBuilder
from repro.kernels import make_kernel


def spliced(program: Program, at: int, *instructions) -> Program:
    """Rebuild *program* with ``(mnemonic, *operands)`` rows inserted at *at*.

    Re-emitting through the builder keeps labels attached to the
    instruction they named, shifted past the insertion point.
    """
    b = ProgramBuilder(f"{program.name}+mut")
    by_index: dict[int, list[str]] = {}
    for name, index in program.labels.items():
        by_index.setdefault(index, []).append(name)
    for index, instr in enumerate(program.instructions):
        if index == at:
            for mnemonic, *operands in instructions:
                b.emit(mnemonic, *operands)
        for name in by_index.get(index, []):
            b.label(name)
        b.emit(instr.opcode.name, *instr.operands)
    return b.build()


def certify_one(program: Program, label: str = "loop"):
    certification = certify_program(program, subject="mutated")
    rules = certification.certified_map()[label]
    certs = [c for c in certification.certificates() if c.loop == label]
    return set(rules), certs


def body_position(program: Program, label: str = "loop") -> int:
    """An insertion point strictly inside the labeled loop body."""
    start = program.labels[label]
    return start + 1


class TestSeededMutations:
    def setup_method(self):
        self.program = make_kernel("DotProduct").mmx_program()
        self.at = body_position(self.program)
        # The unmutated program certifies — every rejection below is
        # caused by the splice, not by the harness.
        rules, certs = certify_one(self.program)
        assert rules == set() and len(certs) == 1

    def test_register_count_shift_blocks(self):
        # Overflow-prone packed op: a shift by a register count can carry
        # across lane boundaries unpredictably; no per-immediate
        # carry-break mask exists.
        mutated = spliced(self.program, self.at, ("psllw", "mm0", "mm5"))
        rules, certs = certify_one(mutated)
        assert "fx-swar-shift" in rules
        assert certs == []

    def test_unzeroed_modular_accumulator_is_recorded(self):
        # A carried modular accumulator that is not provably wrap-free is
        # *recorded* (fx-lane-overflow is informational): per-iteration
        # fusion preserves the wrap, only batching would need renormalizing.
        mutated = spliced(self.program, self.at, ("paddw", "mm6", "mm0"))
        certification = certify_program(mutated, subject="mutated")
        findings = {f.rule for f in certification.findings()}
        assert "fx-lane-overflow" in findings
        (cert,) = certification.certificates()
        assert any(rec["register"] == "mm6" for rec in cert.overflow)

    def test_extra_memory_write_unknown_base_blocks(self):
        # r9 has no concrete value at the loop head: the store's byte
        # footprint cannot be bounded.
        mutated = spliced(self.program, self.at, ("movq", "[r9]", "mm0"))
        rules, certs = certify_one(mutated)
        assert "fx-mem-footprint" in rules
        assert certs == []

    def test_extra_memory_write_indirect_base_blocks(self):
        # Reload the store base from memory each iteration (the
        # MatrixTranspose pattern): the per-iteration stride is unknowable.
        mutated = spliced(
            self.program, self.at,
            ("ldw", "r9", "[r1]"),
            ("movq", "[r9]", "mm0"),
        )
        rules, certs = certify_one(mutated)
        assert "fx-induction-step" in rules
        assert certs == []

    def test_internal_branch_blocks(self):
        # A branch back to the loop head from mid-body creates an
        # alternate internal path through the fused region.
        mutated = spliced(self.program, self.at, ("jz", "loop"))
        rules, certs = certify_one(mutated)
        assert "fx-internal-branch" in rules
        assert certs == []

    def test_head_escaping_branch_blocks(self):
        # A conditional exit to code past the loop: a fused closure could
        # not take the early out.
        end = self.program.labels["loop"]
        closing = next(
            index
            for index, instr in enumerate(self.program.instructions)
            if index > end and instr.opcode.sem == "loop"
        )
        b = ProgramBuilder("escape")
        for index, instr in enumerate(self.program.instructions):
            for name, at in self.program.labels.items():
                if at == index:
                    b.label(name)
            if index == closing - 1:
                b.jnz("escape")
            b.emit(instr.opcode.name, *instr.operands)
        b.label("escape")
        b.halt()
        rules, certs = certify_one(b.build())
        assert "fx-side-exit" in rules
        assert certs == []

    def test_nonconstant_trip_count_blocks(self):
        # Overwrite the counter init with a value the straight-line
        # constant propagation cannot see (a memory load).
        program = self.program
        counter_init = next(
            index
            for index, instr in enumerate(program.instructions)
            if index < program.labels["loop"]
            and instr.opcode.sem == "mov"
            and instr.dest is not None
            and instr.dest.name == "r0"
        )
        mutated = spliced(program, counter_init + 1, ("ldw", "r0", "[r1]"))
        rules, certs = certify_one(mutated)
        assert "fx-trip-count" in rules
        assert certs == []

    def test_sad_accepts_same_harness(self):
        # The splice harness itself keeps a second kernel certifiable:
        # inserting a harmless register copy changes nothing material.
        program = make_kernel("SAD").mmx_program()
        mutated = spliced(
            program, body_position(program), ("movq", "mm5", "mm0")
        )
        rules, certs = certify_one(mutated)
        assert rules == set()
        assert len(certs) == 1


class TestCertificateTampering:
    def setup_method(self):
        self.program = make_kernel("DotProduct").mmx_program()
        certification = certify_program(self.program, subject="DotProduct/mmx")
        (self.cert,) = certification.certificates()
        assert check_fusion_certificate(self.cert, self.program) == []

    def issues_for(self, cert):
        return check_fusion_certificate(cert, self.program)

    def test_wrong_schema_tag(self):
        issues = self.issues_for(replace(self.cert, schema="repro.fusion-cert/0"))
        assert [issue.code for issue in issues] == ["schema"]

    def test_stale_body_text(self):
        body = list(self.cert.body)
        body[0] = body[0].replace("movq", "movd")
        issues = self.issues_for(replace(self.cert, body=tuple(body)))
        assert "stale" in {issue.code for issue in issues}

    def test_tampered_trip_count(self):
        trip = dict(self.cert.trip)
        trip["count"] = trip["count"] + 1
        issues = self.issues_for(replace(self.cert, trip=trip))
        assert "mismatch" in {issue.code for issue in issues}

    def test_tampered_entry_value(self):
        entry = dict(self.cert.entry)
        entry["r1"] = entry["r1"] + 4
        issues = self.issues_for(replace(self.cert, entry=entry))
        assert "mismatch" in {issue.code for issue in issues}

    def test_tampered_memory_stride(self):
        memory = tuple(
            {**record, "stride": record["stride"] * 2}
            for record in self.cert.memory
        )
        issues = self.issues_for(replace(self.cert, memory=memory))
        assert "mismatch" in {issue.code for issue in issues}

    def test_dropped_swar_record(self):
        issues = self.issues_for(replace(self.cert, swar=self.cert.swar[1:]))
        assert "mismatch" in {issue.code for issue in issues}

    def test_tampered_carried_class(self):
        carried = tuple(
            {**record, "class": "reduction"} if record["class"] == "induction"
            else record
            for record in self.cert.carried
        )
        issues = self.issues_for(replace(self.cert, carried=carried))
        assert "mismatch" in {issue.code for issue in issues}

    def test_findings_map_to_cert_rules(self):
        issues = self.issues_for(replace(self.cert, schema="bogus"))
        findings = fusion_certificate_findings(issues, subject="DotProduct/mmx")
        assert [f.rule for f in findings] == ["fx-cert-schema"]
        assert findings[0].loop == self.cert.loop
        assert findings[0].severity.name == "ERROR"

    def test_roundtripped_tamper_detected(self):
        # Tampering survives the JSON round-trip the baseline uses.
        raw = self.cert.as_dict()
        raw["trip"] = {**raw["trip"], "counter": "r5"}
        issues = self.issues_for(FusionCertificate.from_dict(raw))
        assert "mismatch" in {issue.code for issue in issues}

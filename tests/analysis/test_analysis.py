"""Tests for the profiler, branch/overlap accounting and report formatting."""

import pytest

from repro.analysis import (
    branch_row,
    format_table,
    overlap_row,
    pct,
    profile,
    ratio,
    scale_to_paper,
    sci,
)
from repro.cpu import Machine
from repro.isa import assemble
from repro.kernels import DotProductKernel


class TestProfiler:
    def test_opcode_counts(self):
        machine = Machine(assemble("""
            mov r0, 3
        top:
            paddw mm0, mm1
            punpcklwd mm2, mm3
            loop r0, top
            halt
        """))
        prof = profile(machine)
        assert prof.by_opcode["paddw"] == 3
        assert prof.by_opcode["punpcklwd"] == 3
        assert prof.by_opcode["loop"] == 3
        assert prof.by_opcode["halt"] == 1
        assert prof.total == prof.stats.instructions

    def test_fractions(self):
        machine = Machine(assemble("punpcklwd mm0, mm1\nadd r0, 1\nhalt"))
        prof = profile(machine)
        assert prof.mmx_fraction == pytest.approx(1 / 3)
        assert prof.permute_fraction_of_mmx == 1.0
        assert prof.permute_fraction_of_total == pytest.approx(1 / 3)

    def test_class_mix_sums_to_one(self):
        machine = Machine(assemble("paddw mm0, mm1\nmov r0, 1\nldw r1, [r0]\nhalt"))
        prof = profile(machine)
        assert sum(prof.class_mix().values()) == pytest.approx(1.0)

    def test_top_opcodes_ordering(self):
        machine = Machine(assemble("nop\nnop\nnop\npaddw mm0, mm1\nhalt"))
        prof = profile(machine)
        assert prof.top_opcodes(1)[0] == ("nop", 3)

    def test_subscription_released(self):
        machine = Machine(assemble("halt"))
        profile(machine)
        assert not machine.bus.has_subscribers("issue")

    def test_profile_kernel_matches_table3_expectations(self):
        kernel = DotProductKernel(blocks=4)
        machine = kernel._machine(kernel.mmx_program(), None)
        prof = profile(machine)
        assert prof.by_opcode["punpckhwd"] == 4
        assert prof.by_opcode["pmullw"] == 4
        assert 0 < prof.permute_fraction_of_mmx < 1

    def test_empty_run(self):
        prof = profile(Machine(assemble("halt")))
        assert prof.mmx_fraction == 0.0
        assert prof.permute_fraction_of_mmx == 0.0


class TestBranchRows:
    def test_branch_row_from_stats(self):
        machine = Machine(assemble("mov r0, 10\ntop: nop\nloop r0, top\nhalt"))
        stats = machine.run()
        row = branch_row("X", stats, "desc")
        assert row.branches == 10
        assert row.missed_pct == stats.mispredict_rate

    def test_scaling_preserves_rate(self):
        machine = Machine(assemble("mov r0, 10\ntop: nop\nloop r0, top\nhalt"))
        row = branch_row("X", machine.run())
        scaled = scale_to_paper(row, 1.5e10)
        assert scaled.clocks == pytest.approx(1.5e10)
        assert scaled.missed_pct == pytest.approx(row.missed_pct)
        assert scaled.branches / row.branches == pytest.approx(
            scaled.clocks / row.clocks
        )

    def test_zero_clock_guard(self):
        row = branch_row("X", __import__("repro.cpu", fromlist=["RunStats"]).RunStats())
        assert scale_to_paper(row, 1e10).clocks == 0.0
        assert row.missed_pct == 0.0


class TestOverlapRows:
    def test_overlap_from_comparison(self):
        kernel = DotProductKernel(blocks=8)
        row = overlap_row(kernel.compare())
        assert row.cycles_overlapped > 0
        assert 0 < row.pct_mmx_instr < 1
        assert 0 < row.pct_total_instr <= row.pct_mmx_instr
        assert 0 < row.offload_rate <= 1

    def test_full_offload_rate_for_dotprod(self):
        # All four alignment candidates in the loop are removable.
        kernel = DotProductKernel(blocks=8)
        assert overlap_row(kernel.compare()).offload_rate == pytest.approx(1.0)


class TestReportFormatting:
    def test_format_table_alignment(self):
        text = format_table(["a", "long"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_sci(self):
        assert sci(1.51e10) == "1.51E+10"

    def test_pct(self):
        assert pct(0.00094, 3) == "0.094%"
        assert pct(0.5) == "50.00%"

    def test_ratio(self):
        assert ratio(1.0394) == "1.039"

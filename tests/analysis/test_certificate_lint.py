"""Offload-soundness certifier: re-verify certificates, catch tampering.

The certificate is only worth carrying if ``repro lint`` can re-check it
without re-running the pass — and if a divergence between the certificate
and the *shipped* controller program is caught from either side.
"""

import copy

import pytest

from repro.analysis import certificate_findings, resolve_config
from repro.core.interconnect import CONFIG_D_MODED, CONFIGS
from repro.faults.injector import corrupt_route
from repro.kernels import make_kernel


@pytest.fixture()
def report():
    kernel = make_kernel("DotProduct")
    (_, rep), = kernel.offload_reports()
    return rep


def rules_of(findings):
    return {finding.rule for finding in findings}


class TestResolveConfig:
    def test_covers_table_rows_and_moded_extension(self):
        for name in CONFIGS:
            assert resolve_config(name).name == name
        assert resolve_config("d").name == "D"
        assert resolve_config(CONFIG_D_MODED.name) is CONFIG_D_MODED


class TestCleanCertificate:
    def test_shipped_certificate_verifies(self, report):
        assert certificate_findings(report.certificate, report.spu_program) == []

    def test_certificate_alone_verifies(self, report):
        assert certificate_findings(report.certificate) == []


class TestTamperedCertificate:
    def test_stale_removed_position(self, report):
        cert = copy.deepcopy(report.certificate)
        cert.removed = cert.removed + (99,)
        findings = certificate_findings(cert)
        assert "oc-cert-stale" in rules_of(findings)

    def test_byte_movement_tamper_is_caught_by_replay(self, report):
        cert = copy.deepcopy(report.certificate)
        position = min(cert.routes)
        route = list(cert.routes[position][0])
        # Swap two granule-aligned byte pairs: still a legal route, but it
        # no longer reproduces the deleted permutes' byte movement.
        route[0], route[1], route[4], route[5] = (
            route[4], route[5], route[0], route[1],
        )
        cert.routes[position][0] = tuple(route)
        findings = certificate_findings(cert)
        assert "oc-byte-mismatch" in rules_of(findings)

    def test_tamper_also_disagrees_with_shipped_program(self, report):
        cert = copy.deepcopy(report.certificate)
        position = min(cert.routes)
        route = list(cert.routes[position][0])
        route[0], route[1], route[4], route[5] = (
            route[4], route[5], route[0], route[1],
        )
        cert.routes[position][0] = tuple(route)
        findings = certificate_findings(cert, report.spu_program)
        assert "oc-program-mismatch" in rules_of(findings)


class TestCorruptedProgram:
    def test_route_flip_in_control_memory_is_caught(self, report):
        routed_states = [
            index for index, state in report.spu_program.states.items()
            if state.routes
        ]
        state_index = routed_states[0]
        current = report.spu_program.states[state_index].routes[0][1]
        corrupted = corrupt_route(
            report.spu_program, state_index, slot=0, granule=1,
            selector=(current + 1) % 8,
        )
        findings = certificate_findings(report.certificate, corrupted)
        mismatches = [f for f in findings if f.rule == "oc-program-mismatch"]
        assert mismatches
        assert f"state {state_index}" in mismatches[0].location

    def test_chain_length_disagreement(self, report):
        from repro.faults.injector import clone_spu_program
        from repro.analysis import chain_states
        from repro.core.program import SPUState

        clone = clone_spu_program(report.spu_program)
        chain = chain_states(clone)
        first = clone.states[chain[0]]
        clone.states[chain[0]] = SPUState(
            cntr=first.cntr, routes=dict(first.routes),
            next0=first.next0, next1=chain[2],
        )
        findings = certificate_findings(report.certificate, clone)
        assert "oc-program-mismatch" in rules_of(findings)
        assert any("cannot implement" in f.message for f in findings)

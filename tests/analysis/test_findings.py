"""Findings framework: severities, ordering, suppression, rule catalog."""

import pytest

from repro.analysis import RULES, Severity, rule_severity, sort_findings
from repro.analysis.findings import Finding, FindingCollector, worst_severity
from repro.analysis.suppressions import KNOWN_SILENT, lookup


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARN < Severity.ERROR

    def test_parse_round_trip(self):
        for severity in Severity:
            assert Severity.parse(str(severity)) is severity
            assert Severity.parse(severity) is severity

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.parse("fatal")

    def test_str_is_lowercase(self):
        assert str(Severity.ERROR) == "error"


class TestFinding:
    def test_as_dict_omits_empty_fields(self):
        finding = Finding("mp-entry-invalid", Severity.ERROR, "p: entry 5", "bad")
        data = finding.as_dict()
        assert data == {
            "rule": "mp-entry-invalid",
            "severity": "error",
            "location": "p: entry 5",
            "message": "bad",
        }

    def test_suppress_is_nondestructive(self):
        finding = Finding("sa-go-race", Severity.ERROR, "k", "racy")
        suppressed = finding.suppress("seu-data")
        assert finding.suppressed is None
        assert suppressed.suppressed == "seu-data"
        assert suppressed.as_dict()["suppressed"] == "seu-data"

    def test_sort_most_severe_first_then_stable_keys(self):
        findings = [
            Finding("mp-counter-unused", Severity.INFO, "b", "m"),
            Finding("mp-entry-invalid", Severity.ERROR, "a", "m"),
            Finding("mp-unreachable-state", Severity.WARN, "a", "m"),
            Finding("mp-entry-invalid", Severity.ERROR, "A", "m"),
        ]
        ordered = sort_findings(findings)
        assert [f.severity for f in ordered] == [
            Severity.ERROR, Severity.ERROR, Severity.WARN, Severity.INFO,
        ]
        # Within a severity, (rule, location, message) breaks ties.
        assert [f.location for f in ordered[:2]] == ["A", "a"]

    def test_worst_severity_skips_suppressed(self):
        findings = [
            Finding("sa-go-race", Severity.ERROR, "k", "m").suppress("seu-data"),
            Finding("mp-counter-unused", Severity.INFO, "k", "m"),
        ]
        assert worst_severity(findings) is Severity.INFO
        assert worst_severity(findings, include_suppressed=True) is Severity.ERROR
        assert worst_severity([]) is None


class TestCollectorAndCatalog:
    def test_collector_rejects_unknown_rule(self):
        with pytest.raises(KeyError, match="unknown rule id"):
            FindingCollector().add("mp-bogus", "error", "x", "y")

    def test_catalog_ids_are_namespaced_and_unique(self):
        assert len(RULES) >= 30
        for rule_id, rule in RULES.items():
            assert rule.id == rule_id
            family = rule_id.split("-")[0]
            assert family in ("mp", "sa", "oc", "fx")
            assert rule.summary

    def test_rule_severity_lookup(self):
        assert rule_severity("mp-no-path-to-idle") is Severity.ERROR
        assert rule_severity("mp-unreachable-state") is Severity.WARN
        assert rule_severity("mp-validate-skipped") is Severity.INFO


class TestSuppressions:
    def test_registry_entries_document_kinds(self):
        assert set(KNOWN_SILENT) == {
            "seu-data", "word-dont-care", "skew-unused-counter",
        }
        for entry in KNOWN_SILENT.values():
            assert entry.kinds
            assert entry.rationale

    def test_lookup(self):
        assert lookup("seu-data").kinds == ("register_bit",)
        with pytest.raises(KeyError):
            lookup("not-a-suppression")

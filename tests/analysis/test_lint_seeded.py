"""Acceptance bar for the microprogram analyzer.

Two halves, mirroring the lint contract:

- *sensitivity*: a bench of deliberately broken controller microprograms —
  unreachable state, no path to idle, counter underflow, fanout-violating
  and illegal routes, misaligned/nested counters, dangling next pointers —
  each flagged with its specific rule; and
- *specificity*: zero warn-or-worse findings across every registered kernel
  (the false-positive sweep backing the ``repro lint --all`` CI gate).
"""

from repro.analysis import (
    Severity,
    analyze_program,
    exit_code,
    lint_all,
    lint_kernel,
    lint_program,
)
from repro.core.interconnect import CONFIG_D
from repro.core.program import SPUProgram, SPUState


def make_loop(
    length: int = 3,
    iterations: int = 4,
    cntr: int = 0,
    routes: dict | None = None,
) -> SPUProgram:
    """A well-formed single-loop program in the builder.loop shape."""
    program = SPUProgram(name="seeded")
    idle = program.idle_state
    for index in range(length):
        program.add_state(index, SPUState(
            cntr=cntr,
            routes=dict(routes or {}) if index == 0 else {},
            next0=idle,
            next1=(index + 1) % length,
        ))
    counter_init = [0, 0]
    counter_init[cntr] = iterations * length
    program.counter_init = tuple(counter_init)
    program.entry = 0
    return program


def rules_of(findings):
    return {finding.rule for finding in findings}


class TestSeededBrokenPrograms:
    def test_clean_loop_has_no_findings(self):
        assert analyze_program(make_loop(), CONFIG_D) == []

    def test_unreachable_state(self):
        program = make_loop()
        program.add_state(5, SPUState())  # orphan: nothing links to 5
        findings = analyze_program(program, CONFIG_D)
        assert rules_of(findings) == {"mp-unreachable-state"}
        assert "state 5" in findings[0].location

    def test_no_path_to_idle_and_nontermination(self):
        program = SPUProgram(name="spin", counter_init=(6, 0))
        program.add_state(0, SPUState(cntr=0, next0=1, next1=1))
        program.add_state(1, SPUState(cntr=0, next0=0, next1=0))
        findings = analyze_program(program, CONFIG_D)
        assert rules_of(findings) == {"mp-no-path-to-idle", "mp-nontermination"}
        # Both trapped states are named, not just the first.
        locations = {
            f.location for f in findings if f.rule == "mp-no-path-to-idle"
        }
        assert locations == {"spin: state 0", "spin: state 1"}

    def test_counter_underflow(self):
        program = make_loop()
        program.counter_init = (0, 0)
        findings = analyze_program(program, CONFIG_D)
        assert "mp-counter-underflow" in rules_of(findings)
        assert all(f.severity is Severity.ERROR
                   for f in findings if f.rule == "mp-counter-underflow")

    def test_route_fanout_budget(self):
        # One input granule driving all 8 output granules of both operand
        # buses exceeds CONFIG_D's one-operand (4-granule) fanout budget.
        program = make_loop(routes={0: (0, 0, 0, 0), 1: (0, 0, 0, 0)})
        findings = analyze_program(program, CONFIG_D)
        assert rules_of(findings) == {"mp-route-fanout"}

    def test_route_illegal_selector(self):
        program = make_loop(routes={0: (99, None, None, None)})
        findings = analyze_program(program, CONFIG_D)
        assert rules_of(findings) == {"mp-route-illegal"}
        assert findings[0].severity is Severity.ERROR

    def test_counter_misaligned(self):
        program = make_loop(length=2, iterations=4)
        program.counter_init = (7, 0)  # not a multiple of the 2-state cycle
        findings = analyze_program(program, CONFIG_D)
        assert "mp-counter-misaligned" in rules_of(findings)

    def test_counter_nesting_mixed_selects(self):
        program = SPUProgram(name="mixed", counter_init=(6, 6))
        idle = program.idle_state
        program.add_state(0, SPUState(cntr=0, next0=idle, next1=1))
        program.add_state(1, SPUState(cntr=1, next0=idle, next1=0))
        findings = analyze_program(program, CONFIG_D)
        assert "mp-counter-nesting" in rules_of(findings)

    def test_next_undefined(self):
        program = make_loop()
        program.states[2] = SPUState(cntr=0, next0=program.idle_state, next1=33)
        findings = analyze_program(program, CONFIG_D)
        assert "mp-next-undefined" in rules_of(findings)

    def test_entry_invalid(self):
        program = make_loop()
        program.entry = program.idle_state
        findings = analyze_program(program, CONFIG_D)
        assert "mp-entry-invalid" in rules_of(findings)

    def test_counter_unused_is_info_only(self):
        program = make_loop()
        program.counter_init = (program.counter_init[0], 9)
        findings = analyze_program(program, CONFIG_D)
        assert rules_of(findings) == {"mp-counter-unused"}
        assert findings[0].severity is Severity.INFO

    def test_no_config_reports_skipped_rules(self):
        findings = analyze_program(make_loop(), config=None)
        skipped = [f for f in findings if f.rule == "mp-validate-skipped"]
        assert len(skipped) == 2
        messages = " ".join(f.message for f in skipped)
        assert "mp-route-illegal" in messages
        assert "mp-encode-roundtrip" in messages
        assert all(f.severity is Severity.INFO for f in skipped)


class TestValidateSkipContract:
    """Satellite: SPUProgram.validate names what it could not check."""

    def test_validate_without_config_returns_skipped_ids(self):
        assert make_loop().validate(None) == [
            "mp-route-illegal", "mp-encode-roundtrip",
        ]

    def test_validate_with_config_returns_empty(self):
        assert make_loop().validate(CONFIG_D) == []


class TestFalsePositiveSweep:
    #: Kernels whose loops are genuinely data-dependent or indirectly
    #: addressed: the superop certifier *documents* why it withholds the
    #: fusion proof (warn/info fx-* diagnoses), which is the contract —
    #: not a false positive.  Everything else must be finding-free.
    FX_DIAGNOSED = {
        "DCT", "FFT1024", "FFT128", "IDCT", "IIR",
        "MatrixMultiply", "MatrixTranspose", "Viterbi",
    }

    def test_every_registered_kernel_is_clean(self):
        from repro.kernels import ALL_KERNELS

        results = lint_all()
        assert [r.subject for r in results] == sorted(ALL_KERNELS)
        # The original three families stay at zero findings everywhere,
        # and nothing anywhere reaches error severity.
        noisy = {
            r.subject: [
                f.as_dict() for f in r.findings
                if not f.rule.startswith("fx-")
            ]
            for r in results
        }
        assert noisy == {r.subject: [] for r in results}
        assert exit_code(results, "error") == 0
        # fx diagnoses appear exactly on the documented kernels.
        diagnosed = {r.subject for r in results if r.findings}
        assert diagnosed == self.FX_DIAGNOSED

    def test_lint_kernel_accepts_forgiving_names(self):
        result = lint_kernel("dotprod")
        assert result.subject == "DotProduct"
        assert result.findings == []


class TestExitCode:
    def test_thresholds(self):
        broken = make_loop()
        broken.counter_init = (0, 0)  # error-severity finding
        results = [lint_program(broken, CONFIG_D)]
        assert exit_code(results, "error") == 1
        assert exit_code(results, Severity.WARN) == 1

        warn_only = lint_program(
            make_loop(routes={0: (0, 0, 0, 0), 1: (0, 0, 0, 0)}), CONFIG_D
        )
        assert exit_code([warn_only], "error") == 0
        assert exit_code([warn_only], "warn") == 1
        assert exit_code([warn_only], "info") == 1

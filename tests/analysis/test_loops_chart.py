"""Tests for the loop-region profiler and the Figure 9 chart."""

import pytest

from repro.analysis import fig9_chart, find_loop_regions, profile_loops
from repro.cpu import Machine
from repro.isa import assemble
from repro.kernels import DCTKernel, DotProductKernel


class TestLoopRegions:
    def test_single_loop(self):
        program = assemble("mov r0, 3\ntop: nop\nnop\nloop r0, top\nhalt")
        regions = find_loop_regions(program)
        assert len(regions) == 1
        assert (regions[0].label, regions[0].start, regions[0].end) == ("top", 1, 3)

    def test_multiple_loops(self):
        program = assemble("""
            mov r0, 2
        a:  nop
            loop r0, a
            mov r0, 2
        b:  nop
            loop r0, b
            halt
        """)
        regions = find_loop_regions(program)
        assert [r.label for r in regions] == ["a", "b"]

    def test_non_loop_labels_ignored(self):
        program = assemble("jmp skip\nnop\nskip: halt")
        assert find_loop_regions(program) == []


class TestProfileLoops:
    def test_attribution(self):
        machine = Machine(assemble("""
            mov r0, 4
        top:
            paddw mm0, mm1
            punpcklwd mm2, mm3
            loop r0, top
            halt
        """))
        profile = profile_loops(machine)
        region = profile.region("top")
        assert region.instructions == 12  # 3 per iteration x 4
        assert region.mmx_instructions == 8
        assert region.alignment_instructions == 4
        assert region.permute_fraction == pytest.approx(0.5)
        assert profile.outside == 2  # mov + halt
        assert profile.total == 14

    def test_dct_transposes_are_permute_dense(self):
        kernel = DCTKernel(blocks=2)
        machine = kernel._machine(kernel.mmx_program(), None)
        profile = profile_loops(machine)
        assert profile.region("trans1").permute_fraction > profile.region(
            "rows1"
        ).permute_fraction

    def test_hottest(self):
        kernel = DCTKernel(blocks=2)
        machine = kernel._machine(kernel.mmx_program(), None)
        profile = profile_loops(machine)
        assert profile.hottest().label in ("rows1", "rows2")

    def test_render(self):
        machine = Machine(assemble("mov r0, 2\ntop: nop\nloop r0, top\nhalt"))
        text = profile_loops(machine).render()
        assert "top" in text and "(outside)" in text

    def test_unknown_region(self):
        machine = Machine(assemble("halt"))
        profile = profile_loops(machine)
        with pytest.raises(KeyError):
            profile.region("nope")

    def test_subscription_released(self):
        machine = Machine(assemble("halt"))
        profile_loops(machine)
        assert not machine.bus.has_subscribers("issue")


class TestChart:
    def test_bars_scale_and_hash(self):
        comparisons = {"DotProduct": DotProductKernel(blocks=8).compare()}
        text = fig9_chart(comparisons)
        assert "MMX     |" in text and "MMX+SPU |" in text
        assert "#" in text
        assert "x)" in text

    def test_empty(self):
        assert fig9_chart({}) == "(no data)"

    def test_longest_bar_fits_width(self):
        comparisons = {"DotProduct": DotProductKernel(blocks=8).compare()}
        for line in fig9_chart(comparisons).splitlines():
            if "|" in line:
                bar = line.split("|", 1)[1].split()[0]
                assert len(bar) <= 49

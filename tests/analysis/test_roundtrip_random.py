"""Randomized (seeded) encode/decode round-trips for every crossbar config.

The MMIO image is the only transport for control words, so ``decode ∘
encode`` must be the identity for every legal state — including §6 operand
modes — and :func:`decode_state` must *reject* malformed words instead of
decoding garbage.  The shipped Table 1 configurations have exactly-covering
encodings (every representable selector/mode is legal), which this suite
also pins down: it is what keeps the fault campaign's control-word flips
deterministic.
"""

import random

import pytest

from repro.core.interconnect import (
    CONFIG_D_MODED,
    CONFIGS,
    CrossbarConfig,
)
from repro.core.program import (
    ROUTED_SLOTS,
    SPUState,
    decode_state,
    encode_state,
    state_word_bits,
)
from repro.errors import RouteError

ALL_CONFIGS = [*CONFIGS.values(), CONFIG_D_MODED]

#: A config with deliberate encoding slack: 6 input ports need 3 selector
#: bits (values 6 and 7 are malformed), 2 modes need 2 mode bits (index 3 is
#: malformed).  Exercises the rejection paths the shipped configs never hit.
CONFIG_SPARSE = CrossbarConfig(
    name="T6", in_ports=6, out_ports=16, port_bits=16,
    description="test-only: non-power-of-two input window",
    modes=("neg", "sxb"),
)


def random_state(rng: random.Random, config: CrossbarConfig) -> SPUState:
    routes = {}
    for slot in range(ROUTED_SLOTS):
        if rng.random() < 0.25:
            continue  # straight slot
        entries = []
        for _ in range(config.granules_per_operand):
            roll = rng.random()
            if roll < 0.3:
                entries.append(None)
                continue
            sel = rng.randrange(config.in_ports)
            if config.modes and roll > 0.6:
                entries.append((sel, rng.choice(config.modes)))
            else:
                entries.append(sel)
        if all(entry is None for entry in entries):
            entries[0] = rng.randrange(config.in_ports)
        routes[slot] = tuple(entries)
    return SPUState(
        cntr=rng.randrange(2),
        routes=routes,
        next0=rng.randrange(128),
        next1=rng.randrange(128),
    )


@pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.name)
class TestRoundTrip:
    def test_random_states_round_trip(self, config):
        rng = random.Random(f"roundtrip:{config.name}")
        for _ in range(200):
            state = random_state(rng, config)
            word = encode_state(state, config)
            assert word < (1 << state_word_bits(config))
            assert decode_state(word, config) == state

    def test_every_flip_of_a_random_word_decodes_or_rejects(self, config):
        # Exactly-covering encodings (all shipped configs): any single-bit
        # flip of a legal word still decodes — no flip can crash the MMIO
        # path, which the fault campaign's determinism relies on.
        rng = random.Random(f"flips:{config.name}")
        state = random_state(rng, config)
        word = encode_state(state, config)
        for bit in range(state_word_bits(config)):
            decoded = decode_state(word ^ (1 << bit), config)
            assert isinstance(decoded, SPUState)

    def test_shipped_encodings_are_exactly_covering(self, config):
        assert 1 << config.select_bits == config.in_ports
        if config.modes:
            assert (1 << config.mode_bits) - 1 == len(config.modes)


class TestMalformedWordRejection:
    def test_selector_outside_input_window(self):
        config = CONFIG_SPARSE
        state = SPUState(routes={0: (0,) + (None,) * 3})
        word = encode_state(state, config)
        # Overwrite the first granule's selector field with 7 (>= 6 ports).
        word |= 0b111 << 16
        with pytest.raises(RouteError, match="outside the 6-port"):
            decode_state(word, config)

    def test_mode_index_beyond_configured_modes(self):
        config = CONFIG_SPARSE
        state = SPUState(routes={0: ((1, "neg"),) + (None,) * 3})
        word = encode_state(state, config)
        # Force the granule's 2-bit mode field to 3 (> 2 configured modes).
        word |= 0b11 << (16 + config.select_bits)
        with pytest.raises(RouteError, match="mode index 3"):
            decode_state(word, config)

    def test_sparse_config_round_trips_legal_states(self):
        rng = random.Random("sparse")
        for _ in range(200):
            state = random_state(rng, CONFIG_SPARSE)
            assert decode_state(encode_state(state, CONFIG_SPARSE), CONFIG_SPARSE) == state

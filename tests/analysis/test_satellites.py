"""Satellite contracts: completion accounting and the lint CLI.

- :class:`ControllerStats` separates clean idle entries from degrade-mode
  fault parks and their GO re-arms, and ``repro profile`` surfaces all
  three; and
- ``repro lint`` wires the analyzers end to end: kernel name resolution,
  ``--all``, ``--json`` envelopes, ``--fail-on`` exit codes.
"""

import json

import pytest

from repro.cli import main
from repro.core.controller import SPUController
from repro.core.program import SPUProgram, SPUState
from repro.errors import SPUProgramError
from repro.obs.export import ANALYSIS_SCHEMA_VERSION


def two_state_loop(iterations: int = 2) -> SPUProgram:
    program = SPUProgram(name="two-state", counter_init=(iterations * 2, 0))
    idle = program.idle_state
    program.add_state(0, SPUState(cntr=0, next0=idle, next1=1))
    program.add_state(1, SPUState(cntr=0, next0=idle, next1=0))
    return program


class TestCompletionAccounting:
    def test_clean_completion_counts_one_idle_entry(self):
        controller = SPUController()
        controller.load_program(two_state_loop())
        controller.go()
        while controller.active:
            controller.step()
        assert controller.stats.idle_entries == 1
        assert controller.stats.fault_parks == 0
        assert controller.stats.park_recoveries == 0

    def test_fault_park_and_recovery_stay_disjoint_from_idle_entries(self):
        controller = SPUController(resilience="degrade")
        program = two_state_loop(iterations=4)
        controller.load_program(program)
        controller.go()
        controller.step()  # state 0 -> 1
        # Corrupt control memory post-load: the walk reaches an undefined
        # state, and degrade mode parks the unit instead of raising.
        saved = program.states.pop(1)
        controller.step()
        assert controller.fault_parked
        assert not controller.active
        assert controller.stats.fault_parks == 1
        assert controller.stats.idle_entries == 0
        # GO re-arms the parked context: a recovery, not an idle entry.
        program.states[1] = saved
        controller.go()
        assert not controller.fault_parked
        assert controller.stats.park_recoveries == 1
        while controller.active:
            controller.step()
        assert controller.stats.idle_entries == 1
        assert controller.stats.fault_parks == 1
        assert controller.stats.park_recoveries == 1

    def test_strict_mode_raises_instead_of_parking(self):
        controller = SPUController()  # standalone default: STRICT
        program = two_state_loop()
        controller.load_program(program)
        controller.go()
        program.states.pop(1)
        controller.step()
        with pytest.raises(SPUProgramError, match="undefined state 1"):
            controller.step()
        assert controller.stats.fault_parks == 0

    def test_profile_surfaces_completion_split(self, capsys):
        assert main(["profile", "dotprod", "--variant", "spu"]) == 0
        out = capsys.readouterr().out
        assert "clean idle entries" in out
        assert "park recoveries" in out

    def test_profile_json_exports_completion_counters(self, capsys):
        assert main(
            ["profile", "dotprod", "--variant", "spu", "--json", "-"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        controller = document["data"]["variants"]["spu"]["controller"]
        assert controller["clean_idle_entries"] == 1
        assert controller["fault_parks"] == 0
        assert controller["park_recoveries"] == 0


class TestLintCommand:
    def test_lint_named_kernels(self, capsys):
        assert main(["lint", "dotprod", "fir12"]) == 0
        out = capsys.readouterr().out
        assert "clean: DotProduct, FIR12" in out

    def test_lint_requires_a_target(self, capsys):
        assert main(["lint"]) == 2
        assert "name at least one kernel" in capsys.readouterr().err

    def test_lint_all_json_envelope(self, capsys):
        from repro.kernels import ALL_KERNELS

        assert main(["lint", "--all", "--json", "-"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == ANALYSIS_SCHEMA_VERSION
        assert document["kind"] == "lint"
        summary = document["data"]["summary"]
        assert summary["subjects"] == len(ALL_KERNELS)
        assert summary["error"] == 0
        # warn/info carry the superop certifier's fx-* diagnoses on the
        # data-dependent kernels; only error severity must stay at zero.
        assert summary["warn"] > 0

    def test_lint_json_to_file(self, tmp_path, capsys):
        target = tmp_path / "lint.json"
        assert main(["lint", "dotprod", "--json", str(target)]) == 0
        assert "wrote" in capsys.readouterr().out
        assert json.loads(target.read_text())["kind"] == "lint"

    def test_lint_json_is_byte_stable(self, tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        assert main(["lint", "--all", "--json", str(first)]) == 0
        assert main(["lint", "--all", "--json", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()

    def test_fail_on_choices_accepted(self):
        for threshold in ("info", "warn", "error"):
            assert main(["lint", "dotprod", "--fail-on", threshold]) == 0

"""Schedule-agreement analyzer: kernel loop body versus controller program.

Each test takes a real kernel build and perturbs exactly one side of the
convention — counter totals, the next-state graph, GO-store placement —
then asserts the specific ``sa-*`` rule fires.  The clean build must stay
silent: the analyzer's value is that every finding marks a real divergence.
"""

from repro.analysis import analyze_schedule, chain_states
from repro.analysis.schedule import _go_stores
from repro.core.program import SPUState
from repro.faults.injector import clone_spu_program
from repro.isa import assemble
from repro.isa.instructions import Program
from repro.kernels import make_kernel


def build(name="DotProduct"):
    kernel = make_kernel(name)
    program, controller = kernel.spu_programs()
    return kernel, program, controller


def install(kernel, program, controller):
    """Replace the kernel's cached build with a perturbed one."""
    kernel._spu_build = (program, controller)
    return kernel


def mutate_controller(kernel, mutate):
    program, controller = kernel.spu_programs()
    perturbed = [
        (context, mutate(clone_spu_program(spu_program)))
        for context, spu_program in controller
    ]
    return install(kernel, program, perturbed)


def splice(program: Program, index: int, remove: int = 0, insert=()) -> Program:
    """Rebuild *program* with instructions removed/inserted at *index*."""
    instructions = (
        program.instructions[:index]
        + list(insert)
        + program.instructions[index + remove :]
    )
    delta = len(insert) - remove
    labels = {
        name: (target + delta if target >= index else target)
        for name, target in program.labels.items()
    }
    return Program(instructions=instructions, labels=labels, name=program.name)


def rules_of(findings):
    return {finding.rule for finding in findings}


class TestCleanAgreement:
    def test_dotproduct_is_silent(self):
        kernel, _, _ = build()
        assert analyze_schedule(kernel) == []

    def test_go_store_scan_matches_loaded_contexts(self):
        kernel, program, controller = build()
        stores = _go_stores(program)
        assert [context for _, context in stores] == [
            context for context, _ in controller
        ]

    def test_chain_length_matches_body(self):
        kernel, program, controller = build()
        from repro.core.offload import find_loop

        for (context, spu_program), spec in zip(controller, kernel.loops()):
            start, end = find_loop(program, spec.label)
            assert len(chain_states(spu_program)) == end - start + 1


class TestCounterDisagreement:
    def test_counter_total_mismatch(self):
        def skew(program):
            cntr = program.states[program.entry].cntr
            init = list(program.counter_init)
            init[cntr] += 1
            program.counter_init = tuple(init)
            return program

        kernel = mutate_controller(make_kernel("DotProduct"), skew)
        findings = analyze_schedule(kernel)
        assert "sa-counter-total" in rules_of(findings)

    def test_schedule_drift_from_broken_exit_edge(self):
        def break_exit(program):
            chain = chain_states(program)
            last = program.states[chain[-1]]
            # Exit edge now re-enters the loop instead of retiring to idle:
            # the walk overruns the required schedule.
            program.states[chain[-1]] = SPUState(
                cntr=last.cntr, routes=dict(last.routes),
                next0=chain[0], next1=last.next1,
            )
            return program

        kernel = mutate_controller(make_kernel("DotProduct"), break_exit)
        findings = analyze_schedule(kernel)
        drift = [f for f in findings if f.rule == "sa-schedule-drift"]
        assert drift
        assert "diverges" in drift[0].message

    def test_loop_length_mismatch(self):
        def shrink(program):
            chain = chain_states(program)
            if len(chain) < 2:
                return program
            # Short-circuit the chain past its second state.
            first = program.states[chain[0]]
            program.states[chain[0]] = SPUState(
                cntr=first.cntr, routes=dict(first.routes),
                next0=first.next0, next1=chain[2] if len(chain) > 2 else first.next0,
            )
            return program

        kernel = mutate_controller(make_kernel("DotProduct"), shrink)
        findings = analyze_schedule(kernel)
        assert "sa-loop-length" in rules_of(findings)


class TestGoPlacement:
    def test_missing_go(self):
        kernel, program, controller = build()
        (go_index, _context), = [
            (index, context) for index, context in _go_stores(program)
        ]
        # Drop the mov/stw pair that forms the GO store.
        stripped = splice(program, go_index - 1, remove=2)
        kernel = install(kernel, stripped, controller)
        findings = analyze_schedule(kernel)
        assert "sa-missing-go" in rules_of(findings)

    def test_go_lead_in(self):
        kernel, program, controller = build()
        (go_index, _context), = _go_stores(program)
        filler = assemble("nop").instructions
        # A stray instruction between the GO store and the loop label: the
        # active controller steps it, skewing every route pairing after.
        padded = splice(program, go_index + 1, insert=filler)
        kernel = install(kernel, padded, controller)
        findings = analyze_schedule(kernel)
        lead = [f for f in findings if f.rule == "sa-go-lead-in"]
        assert lead and "1 instruction(s)" in lead[0].message

    def test_go_before_load_names_unknown_context(self):
        kernel, program, controller = build()
        rogue = assemble("mov r15, 7\nstw [r14], r15").instructions
        patched = splice(program, 0, insert=rogue)
        kernel = install(kernel, patched, controller)
        findings = analyze_schedule(kernel)
        orphan = [f for f in findings if f.rule == "sa-go-before-load"]
        assert orphan and "context 3" in orphan[0].message

    def test_go_inside_loop(self):
        kernel, program, controller = build()
        (go_index, context), = _go_stores(program)
        from repro.core.offload import find_loop

        start, end = find_loop(program, kernel.loops()[0].label)
        rogue = assemble(f"mov r15, {1 | (context << 1)}\nstw [r14], r15").instructions
        inside = splice(program, end, insert=rogue)
        kernel = install(kernel, inside, controller)
        findings = analyze_schedule(kernel)
        assert "sa-go-inside-loop" in rules_of(findings)

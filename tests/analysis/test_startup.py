"""Tests for the start-up cost measurement and the MMIO upload generator."""

import numpy as np
import pytest

from repro.analysis import measure_startup_cost
from repro.core import (
    CONFIG_D,
    DEFAULT_MMIO_BASE,
    SPUController,
    SPUProgramBuilder,
    attach_spu,
    halfword_route,
)
from repro.core.mmio import emit_upload
from repro.cpu import Machine
from repro.isa import MM, ProgramBuilder
from repro.kernels import DotProductKernel


class TestEmitUpload:
    def build_ucode(self):
        builder = SPUProgramBuilder(config=CONFIG_D)
        route = halfword_route([(2, 0), (2, 1), (2, 2), (2, 3)])
        builder.loop([{1: route}], iterations=2)
        return builder.build()

    def test_uploaded_program_runs(self):
        """A program that stages its own microcode via MMIO, then uses it."""
        from repro import simd
        ucode = self.build_ucode()
        b = ProgramBuilder("self-programming")
        b.mov("r14", DEFAULT_MMIO_BASE)
        emit_upload(b, ucode, CONFIG_D, context=0, go=True)
        b.paddw("mm0", "mm1")
        b.paddw("mm0", "mm1")
        b.halt()
        machine = Machine(b.build())
        machine.state.write(MM[2], simd.join([5, 5, 5, 5], 16))
        controller = SPUController(config=CONFIG_D)
        attach_spu(machine, controller)
        machine.run()
        # both adds routed +5 from MM2
        assert simd.split(machine.state.mmx[0], 16).tolist() == [10, 10, 10, 10]

    def test_upload_without_go_stays_idle(self):
        ucode = self.build_ucode()
        b = ProgramBuilder("stage-only")
        b.mov("r14", DEFAULT_MMIO_BASE)
        count = emit_upload(b, ucode, CONFIG_D, go=False)
        b.halt()
        machine = Machine(b.build())
        controller = SPUController(config=CONFIG_D)
        attach_spu(machine, controller)
        machine.run()
        assert not controller.active
        assert count > 0

    def test_instruction_count_matches_emission(self):
        ucode = self.build_ucode()
        b = ProgramBuilder("count")
        b.mov("r14", DEFAULT_MMIO_BASE)
        count = emit_upload(b, ucode, CONFIG_D, go=True)
        b.halt()
        assert len(b.build()) == count + 2  # + the mov r14 and halt


class TestStartupCost:
    def test_dotprod_cost(self):
        cost = measure_startup_cost(DotProductKernel())
        assert cost.state_words == 9
        assert cost.upload_cycles > 0
        assert cost.upload_instructions > cost.state_words
        assert cost.break_even_invocations < 2

    def test_break_even_infinite_when_no_savings(self):
        from repro.analysis.startup import StartupCost
        cost = StartupCost("x", 1, 2, 100, 0)
        assert cost.break_even_invocations == float("inf")

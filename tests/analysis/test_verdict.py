"""The lint/fault-campaign cross-check: every injection gets a static verdict.

Direct :func:`injection_verdict` cases per fault kind, then the integration
bar from docs/static-analysis.md: in a real campaign, every *silent*
injection is either flagged by the analyzer or covered by a documented
known-silent suppression — ``silent_unexplained`` must be zero.
"""

import pytest

from repro.analysis.verdict import injection_verdict
from repro.faults.campaign import run_check
from repro.faults.report import check_report
from repro.faults.spec import FaultSpec
from repro.kernels import make_kernel


@pytest.fixture(scope="module")
def kernel():
    return make_kernel("DotProduct")


class TestPerKindVerdicts:
    def test_register_bit_is_documented_out_of_scope(self, kernel):
        spec = FaultSpec(kind="register_bit", trigger=5, byte=3, bit=2)
        verdict = injection_verdict(kernel, spec)
        assert verdict == {"verdict": "suppressed", "suppression": "seu-data"}

    def test_go_race_is_always_a_hazard(self, kernel):
        spec = FaultSpec(kind="go_race", trigger=5)
        assert injection_verdict(kernel, spec) == {
            "verdict": "flagged", "rules": ["sa-go-race"],
        }

    def test_counter_skew_on_consulted_counter_flags_drift(self, kernel):
        spec = FaultSpec(kind="counter_skew", trigger=5, counter=0, delta=3)
        assert injection_verdict(kernel, spec) == {
            "verdict": "flagged", "rules": ["sa-schedule-drift"],
        }

    def test_counter_skew_on_unused_counter_is_suppressed(self, kernel):
        # DotProduct's single loop selects CNTR0 only.
        spec = FaultSpec(kind="counter_skew", trigger=5, counter=1, delta=3)
        assert injection_verdict(kernel, spec) == {
            "verdict": "suppressed", "suppression": "skew-unused-counter",
        }

    def test_zero_delta_skew_is_suppressed(self, kernel):
        spec = FaultSpec(kind="counter_skew", trigger=5, counter=0, delta=0)
        assert injection_verdict(kernel, spec)["verdict"] == "suppressed"

    def test_control_word_flip_in_next_field_is_flagged(self, kernel):
        # Bit 1 sits in the next0 field of the encoded word: the corrupted
        # program has a different graph, which the lint pass must flag.
        spec = FaultSpec(
            kind="control_word", trigger=5, context=0, state_index=0,
            word_bit=1,
        )
        verdict = injection_verdict(kernel, spec)
        assert verdict["verdict"] == "flagged"
        assert verdict["rules"]

    def test_control_word_flip_in_dont_care_bit_is_suppressed(self, kernel):
        # An unrouted state's selector bits are don't-cares: the flipped
        # word decodes to the identical control state.
        _, controller = kernel.spu_programs()
        program = dict(controller)[0]
        straight = min(
            index for index, state in program.states.items()
            if not state.routes
        )
        from repro.core.program import state_word_bits

        spec = FaultSpec(
            kind="control_word", trigger=5, context=0, state_index=straight,
            word_bit=state_word_bits(kernel.config) - 1,
        )
        assert injection_verdict(kernel, spec) == {
            "verdict": "suppressed", "suppression": "word-dont-care",
        }

    def test_route_rewrite_is_flagged_via_certificate(self, kernel):
        _, controller = kernel.spu_programs()
        program = dict(controller)[0]
        routed = min(
            index for index, state in program.states.items() if state.routes
        )
        current = program.states[routed].routes[0][0]
        spec = FaultSpec(
            kind="route", trigger=5, context=0, state_index=routed,
            slot=0, granule=0, selector=(current + 1) % 8,
        )
        verdict = injection_verdict(kernel, spec)
        assert verdict["verdict"] == "flagged"
        assert "oc-program-mismatch" in verdict["rules"]

    def test_route_rewrite_to_same_selector_is_suppressed(self, kernel):
        _, controller = kernel.spu_programs()
        program = dict(controller)[0]
        routed = min(
            index for index, state in program.states.items() if state.routes
        )
        spec = FaultSpec(
            kind="route", trigger=5, context=0, state_index=routed,
            slot=0, granule=0, selector=program.states[routed].routes[0][0],
        )
        assert injection_verdict(kernel, spec) == {
            "verdict": "suppressed", "suppression": "word-dont-care",
        }

    def test_unloaded_state_target_is_unexplained(self, kernel):
        spec = FaultSpec(
            kind="control_word", trigger=5, context=0, state_index=90,
            word_bit=0,
        )
        assert injection_verdict(kernel, spec) == {"verdict": "unexplained"}


class TestCampaignCrossCheck:
    @pytest.fixture(scope="class")
    def result(self):
        return run_check(
            kernels=("DotProduct", "SAD"), faults=12, seed=7, fast=True,
        )

    def test_every_injection_carries_a_verdict(self, result):
        for record in result.injections:
            assert record["analysis"]["verdict"] in (
                "flagged", "suppressed", "unexplained",
            )

    def test_no_silent_injection_is_unexplained(self, result):
        gaps = [
            record for record in result.injections
            if record["outcome"] == "silent"
            and record["analysis"]["verdict"] == "unexplained"
        ]
        assert gaps == []

    def test_report_summarizes_the_cross_check(self, result):
        body = check_report(result)["data"]
        analysis = body["summary"]["analysis"]
        assert analysis["silent_unexplained"] == 0
        assert (
            analysis["flagged"] + analysis["suppressed"]
            + analysis["unexplained"]
            == len(result.injections)
        )

    def test_render_mentions_the_cross_check(self, result):
        from repro.faults.report import render_check

        text = render_check(result)
        assert "static cross-check" in text

"""Tests for the explicit-permute (vperm) baseline."""

import numpy as np
import pytest

from repro import simd
from repro.errors import KernelError
from repro.baselines import (
    compare_baselines,
    dotprod_vperm_program,
    halfwords,
    transpose_vperm_program,
    vperm_control,
)
from repro.cpu import Machine
from repro.isa import MM, assemble, lookup


class TestVpermInstruction:
    def test_opcode_metadata(self):
        opcode = lookup("vperm")
        assert opcode.is_permute and opcode.extension
        assert opcode.iclass.value == "mmx_shift"

    def test_identity(self):
        control = vperm_control(list(range(8)))
        machine = Machine(assemble(f"vperm mm0, mm1, {control}\nhalt"))
        machine.state.write(MM[0], 0x1122334455667788)
        machine.state.write(MM[1], 0xAABBCCDDEEFF0011)
        machine.run()
        assert machine.state.mmx[0] == 0x1122334455667788

    def test_select_from_source(self):
        control = vperm_control(list(range(8, 16)))
        machine = Machine(assemble(f"vperm mm0, mm1, {control}\nhalt"))
        machine.state.write(MM[1], 0xAABBCCDDEEFF0011)
        machine.run()
        assert machine.state.mmx[0] == 0xAABBCCDDEEFF0011

    def test_interleave_equals_punpcklwd(self):
        control = vperm_control(halfwords(("a", 0), ("b", 0), ("a", 1), ("b", 1)))
        src_v = f"""
            movq mm2, mm0
            punpcklwd mm2, mm1
            vperm mm0, mm1, {control}
            halt
        """
        machine = Machine(assemble(src_v))
        machine.state.write(MM[0], simd.join([1, 2, 3, 4], 16))
        machine.state.write(MM[1], simd.join([5, 6, 7, 8], 16))
        machine.run()
        assert machine.state.mmx[0] == machine.state.mmx[2]

    def test_byte_reverse(self):
        control = vperm_control([7, 6, 5, 4, 3, 2, 1, 0])
        machine = Machine(assemble(f"vperm mm0, mm1, {control}\nhalt"))
        machine.state.write(MM[0], 0x1122334455667788)
        machine.run()
        assert machine.state.mmx[0] == 0x8877665544332211

    def test_control_validation(self):
        with pytest.raises(KernelError):
            vperm_control([0] * 7)
        with pytest.raises(KernelError):
            vperm_control([16] + [0] * 7)


class TestVpermKernels:
    def test_dotprod_program_matches_reference(self):
        from repro.kernels import DotProductKernel
        kernel = DotProductKernel(blocks=8)
        program = dotprod_vperm_program(kernel.blocks)
        machine = Machine(program)
        kernel.prepare(machine)
        machine.run()
        assert np.array_equal(kernel.extract(machine), kernel.reference())

    def test_transpose_program_matches_reference(self):
        from repro.kernels import TransposeKernel
        kernel = TransposeKernel(n=8)
        program = transpose_vperm_program(8)
        machine = Machine(program)
        kernel.prepare(machine)
        machine.run()
        assert np.array_equal(kernel.extract(machine), kernel.reference())

    def test_transpose_size_guard(self):
        with pytest.raises(KernelError):
            transpose_vperm_program(6)


class TestComparison:
    @pytest.mark.parametrize("name", ["DotProduct", "MatrixTranspose"])
    def test_spu_beats_both(self, name):
        result = compare_baselines(name)
        assert result.spu.cycles < result.vperm.cycles
        assert result.spu.cycles < result.mmx.cycles
        assert result.spu.instructions < result.vperm.instructions

    def test_vperm_competitive_with_mmx(self):
        result = compare_baselines("DotProduct")
        assert result.vperm.cycles <= result.mmx.cycles

    def test_unknown_kernel(self):
        with pytest.raises(KernelError):
            compare_baselines("FIR12")

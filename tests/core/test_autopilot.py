"""Tests for whole-program SPU compilation (the fully automated §4 path)."""

import numpy as np
import pytest

from repro.core import (
    CONFIG_D,
    SPUController,
    attach_spu,
    detect_counted_loops,
    offload_program,
)
from repro.core.offload import OffloadError
from repro.cpu import Machine
from repro.isa import ProgramBuilder, assemble

PLAIN_LOOP = """
    mov r0, 6
    mov r1, 0x1000
    mov r2, 0x8000
loop:
    movq mm0, [r1]
    movq mm1, [r1+8]
    movq mm2, mm0
    punpckhwd mm2, mm1
    punpcklwd mm0, mm1
    movq [r2], mm0
    movq [r2+8], mm2
    add r1, 16
    add r2, 16
    loop r0, loop
    halt
"""


def run_with(program, controller_programs=None, out_words=48):
    machine = Machine(program)
    machine.memory.write_array(0x1000, np.arange(-48, 48, dtype=np.int16), np.int16)
    if controller_programs is not None:
        controller = SPUController(config=CONFIG_D, contexts=4)
        for context, spu_program in controller_programs:
            controller.load_program(spu_program, context=context)
        attach_spu(machine, controller)
    stats = machine.run()
    return machine.memory.read_array(0x8000, out_words, np.uint16).tolist(), stats


class TestLoopDetection:
    def test_counted_loop_found(self):
        detected, skipped = detect_counted_loops(assemble(PLAIN_LOOP))
        assert len(detected) == 1
        loop = detected[0]
        assert loop.label == "loop" and loop.iterations == 6
        assert not skipped

    def test_counter_not_immediate(self):
        program = assemble("""
            ldw r0, [r5]
        top: nop
            loop r0, top
            halt
        """)
        detected, skipped = detect_counted_loops(program)
        assert not detected
        assert "mov-immediate" in skipped["top"]

    def test_branch_between_setup_and_loop(self):
        program = assemble("""
            mov r0, 4
            jmp top
        top: nop
            loop r0, top
            halt
        """)
        detected, skipped = detect_counted_loops(program)
        assert not detected and "branch" in skipped["top"]

    def test_inner_control_flow_skipped(self):
        program = assemble("""
            mov r0, 4
        outer:
            mov r3, 2
        inner:
            nop
            loop r3, inner
            loop r0, outer
            halt
        """)
        detected, skipped = detect_counted_loops(program)
        # The inner loop is clean; the outer contains it (inner control flow).
        assert [loop.label for loop in detected] == ["inner"]
        assert "inner control flow" in skipped["outer"]

    def test_body_writing_counter_skipped(self):
        program = assemble("""
            mov r0, 4
        top:
            add r0, 1
            loop r0, top
            halt
        """)
        detected, skipped = detect_counted_loops(program)
        assert not detected and "counter" in skipped["top"]


class TestOffloadProgram:
    def test_end_to_end_equivalence(self):
        program = assemble(PLAIN_LOOP)
        result = offload_program(program)
        assert result.accelerated == ["loop"]
        assert result.removed >= 3
        base, base_stats = run_with(program)
        auto, auto_stats = run_with(result.program, result.controller_programs)
        assert base == auto
        assert auto_stats.instructions < base_stats.instructions + 3  # plumbing amortized

    def test_no_loops_returns_original(self):
        program = assemble("paddw mm0, mm1\nhalt")
        result = offload_program(program)
        assert result.program is program
        assert not result.controller_programs

    def test_unprofitable_loop_untouched(self):
        program = assemble("""
            mov r0, 4
        top:
            paddw mm0, mm1
            loop r0, top
            halt
        """)
        result = offload_program(program)
        assert not result.accelerated
        assert "no removable permutes" in result.skipped["top"]

    def test_multiple_loops_get_contexts(self):
        b = ProgramBuilder("multi")
        b.mov("r1", 0x1000)
        b.mov("r2", 0x8000)
        for index in range(3):
            b.mov("r0", 3)
            b.label(f"l{index}")
            b.movq("mm0", "[r1]")
            b.movq("mm1", "mm0")
            b.punpcklwd("mm1", "mm0")
            b.movq("[r2]", "mm1")
            b.add("r1", 8)
            b.add("r2", 8)
            b.loop("r0", f"l{index}")
        b.halt()
        program = b.build()
        result = offload_program(program)
        assert result.accelerated == ["l0", "l1", "l2"]
        assert [ctx for ctx, _ in result.controller_programs] == [0, 1, 2]
        base, _ = run_with(program, out_words=18)
        auto, _ = run_with(result.program, result.controller_programs, out_words=18)
        assert base == auto

    def test_plumbing_uses_free_registers(self):
        program = assemble(PLAIN_LOOP)
        result = offload_program(program)
        text = str(result.program)
        assert "r15" in text or "r14" in text  # high registers are free here

    def test_register_pressure_error(self):
        # A program touching every scalar register leaves no plumbing room.
        b = ProgramBuilder("greedy")
        for index in range(16):
            b.mov(f"r{index}", 1)
        b.mov("r0", 2)
        b.label("top")
        b.movq("mm1", "mm0")
        b.punpcklwd("mm1", "mm0")
        b.movq("mm2", "mm1")
        b.paddw("mm2", "mm1")
        b.loop("r0", "top")
        b.halt()
        with pytest.raises(OffloadError):
            offload_program(b.build())

    def test_accelerated_program_is_faster(self):
        program = assemble(PLAIN_LOOP)
        result = offload_program(program)
        _, base_stats = run_with(program)
        _, auto_stats = run_with(result.program, result.controller_programs)
        assert auto_stats.cycles < base_stats.cycles


class TestNestedPrograms:
    def test_inner_loop_of_nest_accelerated(self):
        """GO re-issues per outer iteration (re-activation idiom)."""
        source = """
            mov r1, 0x1000
            mov r2, 0x8000
            mov r0, 4
        rows:
            mov r3, 3
        cols:
            movq mm0, [r1]
            pshufw mm0, mm0, 0x4E
            paddw mm0, mm1
            movq [r2], mm0
            add r1, 8
            add r2, 8
            loop r3, cols
            add r4, 1
            loop r0, rows
            halt
        """
        from repro import simd
        from repro.isa import MM

        program = assemble(source, "nested")
        result = offload_program(program)
        assert result.accelerated == ["cols"]
        assert "inner control flow" in result.skipped["rows"]

        def run(p, cps=None):
            machine = Machine(p)
            machine.memory.write_array(
                0x1000, np.arange(-24, 24, dtype=np.int16), np.int16
            )
            machine.state.write(MM[1], simd.join([10, 20, 30, 40], 16))
            if cps is not None:
                controller = SPUController(config=CONFIG_D, contexts=4)
                for context, spu_program in cps:
                    controller.load_program(spu_program, context=context)
                attach_spu(machine, controller)
            machine.run()
            return machine.memory.read_array(0x8000, 48, np.int16).tolist()

        assert run(program) == run(result.program, result.controller_programs)

"""Tests for the SPU program builder and route helper functions."""

import pytest

from repro.errors import SPUProgramError
from repro.core import (
    CONFIG_A,
    CONFIG_D,
    SPUController,
    SPUProgramBuilder,
    StateSpec,
    byte_route,
    halfword_route,
    identity_route,
)


class TestRouteHelpers:
    def test_byte_route(self):
        route = byte_route([(0, 0), (1, 0), None, (7, 7), None, None, None, None])
        assert route == (0, 8, None, 63, None, None, None, None)

    def test_byte_route_length(self):
        with pytest.raises(SPUProgramError):
            byte_route([(0, 0)] * 4)

    def test_halfword_route_expands_pairs(self):
        route = halfword_route([(0, 0), (1, 2), None, (3, 3)])
        assert route == (0, 1, 12, 13, None, None, 30, 31)

    def test_halfword_route_bounds(self):
        with pytest.raises(SPUProgramError):
            halfword_route([(0, 4), None, None, None])

    def test_identity_route(self):
        assert identity_route(2) == tuple(range(16, 24))


class TestBuilderLoops:
    def test_single_loop_structure(self):
        b = SPUProgramBuilder(config=CONFIG_D)
        first = b.loop([None, {0: halfword_route([(1, 0)] * 4)}, None], iterations=5)
        program = b.build(entry=first)
        assert program.counter_init == (15, 0)
        assert set(program.states) == {0, 1, 2}
        assert program.states[0].next1 == 1
        assert program.states[2].next1 == 0  # wraps
        assert all(s.next0 == 127 for s in program.states.values())
        # (reg 1, half-word 0) = bytes 8,9 = input granule 4 of config D
        assert program.states[1].routes[0] == (4, 4, 4, 4)

    def test_loop_runs_correct_count(self):
        b = SPUProgramBuilder()
        b.loop([None] * 4, iterations=7)
        ctl = SPUController()
        ctl.load_program(b.build())
        ctl.go()
        steps = 0
        while ctl.active:
            ctl.step()
            steps += 1
        assert steps == 28

    def test_two_level_loop_counts(self):
        b = SPUProgramBuilder()
        b.two_level_loop([None, None], 3, [None], 4)
        program = b.build()
        assert program.counter_init == (6, 4)
        ctl = SPUController()
        ctl.load_program(program)
        ctl.go()
        trace = []
        while ctl.active:
            trace.append(ctl.current_state)
            ctl.step()
        assert trace == ([0, 1] * 3 + [2]) * 4

    def test_empty_loop_rejected(self):
        with pytest.raises(SPUProgramError):
            SPUProgramBuilder().loop([], 3)

    def test_bad_iterations(self):
        with pytest.raises(SPUProgramError):
            SPUProgramBuilder().loop([None], 0)

    def test_conflicting_counter_reuse(self):
        b = SPUProgramBuilder()
        b.loop([None], iterations=5, counter=0)
        with pytest.raises(SPUProgramError):
            b.loop([None], iterations=7, counter=0)

    def test_capacity_exhaustion(self):
        b = SPUProgramBuilder()
        with pytest.raises(SPUProgramError):
            b.loop([None] * 128, iterations=1)

    def test_route_validated_against_config(self):
        b = SPUProgramBuilder(config=CONFIG_D)
        # byte route with torn half-word — illegal at 16-bit granularity
        with pytest.raises(Exception):
            b.loop([{0: (1, 4, None, None, None, None, None, None)}], 2)

    def test_add_state_explicit(self):
        b = SPUProgramBuilder(config=CONFIG_A)
        index = b.add_state({1: identity_route(3)}, cntr=1, next0=127, next1=0)
        assert index == 0
        # Counter 1 used but never initialized -> validate() must fail.
        with pytest.raises(SPUProgramError):
            b.build()

    def test_statespec_passthrough(self):
        b = SPUProgramBuilder()
        b.loop([StateSpec(), StateSpec(routes={0: halfword_route([(0, 0)] * 4)})], 2)
        program = b.build()
        assert program.states[0].is_straight
        assert not program.states[1].is_straight

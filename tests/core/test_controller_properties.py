"""Property tests for the decoupled controller's counter semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SPUController, SPUProgram, SPUState


@st.composite
def chain_programs(draw):
    """Random cyclic chains where every ``next0`` exits to idle.

    For such programs the §4 semantics pin the total step count exactly:
    every step decrements CNTR0, and the first zero exits — so the run
    length equals the programmed counter, independent of chain shape.
    """
    length = draw(st.integers(1, 12))
    counter = draw(st.integers(1, 200))
    # next1 chain: a random permutation cycle over the states keeps every
    # state reachable and the walk arbitrary.
    order = draw(st.permutations(range(length)))
    successor = {order[i]: order[(i + 1) % length] for i in range(length)}
    program = SPUProgram(counter_init=(counter, 0), name="chain")
    for index in range(length):
        program.add_state(
            index, SPUState(cntr=0, next0=127, next1=successor[index])
        )
    program.entry = order[0]
    return program, counter


class TestCounterSemantics:
    @settings(max_examples=50, deadline=None)
    @given(chain_programs())
    def test_run_length_equals_counter(self, program_counter):
        program, counter = program_counter
        controller = SPUController()
        controller.load_program(program)
        controller.go()
        steps = 0
        while controller.active:
            assert controller.step() is not None
            steps += 1
            assert steps <= counter
        assert steps == counter
        assert controller.current_state == controller.idle_state

    @settings(max_examples=25, deadline=None)
    @given(chain_programs())
    def test_counters_restored_and_rerunnable(self, program_counter):
        program, counter = program_counter
        controller = SPUController()
        controller.load_program(program)
        for _ in range(2):  # the GO bit re-arms without reprogramming (§4)
            controller.go()
            steps = 0
            while controller.active:
                controller.step()
                steps += 1
            assert steps == counter
            assert controller.counters == (counter, 0)

    @settings(max_examples=25, deadline=None)
    @given(chain_programs(), st.integers(1, 50))
    def test_suspend_resume_preserves_total(self, program_counter, pause_at):
        program, counter = program_counter
        controller = SPUController()
        controller.load_program(program)
        controller.go()
        steps = 0
        while controller.active:
            if steps == min(pause_at, counter - 1):
                controller.suspend()
                controller.resume()
            controller.step()
            steps += 1
        assert steps == counter

"""Tests for the §4 exception-handling paths: suspend, context switch, resume.

"On an exception, we can either ensure that the exception handler disables
the SPU by writing to the SPU control register, or switches to a free
context of the SPU."  Each context keeps its own copy of the control
registers (§3), so a suspended loop resumes exactly where it stopped.
"""

import numpy as np
import pytest

from repro import simd
from repro.errors import SPUProgramError
from repro.cpu import Machine
from repro.core import (
    CONFIG_D,
    DEFAULT_MMIO_BASE,
    REG_CONFIG,
    SPUController,
    SPUProgramBuilder,
    attach_spu,
    halfword_route,
)
from repro.isa import MM, assemble


def straight_loop(body_len, iterations, config=CONFIG_D):
    builder = SPUProgramBuilder(config=config)
    builder.loop([None] * body_len, iterations)
    return builder.build()


class TestSuspendResume:
    def make(self):
        ctl = SPUController(contexts=2)
        ctl.load_program(straight_loop(3, 10), context=0)
        ctl.load_program(straight_loop(2, 4), context=1)
        return ctl

    def test_suspend_preserves_state(self):
        ctl = self.make()
        ctl.go(context=0)
        for _ in range(4):  # mid-loop: state 1 of the 3-state chain
            ctl.step()
        saved_state = ctl.current_state
        saved_counters = ctl.counters
        ctl.suspend()
        assert not ctl.active
        assert ctl.current_state == saved_state
        assert ctl.counters == saved_counters

    def test_resume_continues_exactly(self):
        ctl = self.make()
        ctl.go(context=0)
        for _ in range(7):
            ctl.step()
        ctl.suspend()
        ctl.resume()
        remaining = 0
        while ctl.active:
            ctl.step()
            remaining += 1
        assert remaining == 30 - 7  # CNTR0 = 10 x 3

    def test_handler_runs_free_context_then_resumes(self):
        """The full §4 pattern: interrupt, run context 1, return to context 0."""
        ctl = self.make()
        ctl.go(context=0)
        for _ in range(5):
            ctl.step()
        interrupted_state = ctl.current_state
        interrupted_counters = ctl.counters
        ctl.suspend()

        # Handler: switch to the free context and run it to completion.
        ctl.go(context=1)
        handler_steps = 0
        while ctl.active:
            ctl.step()
            handler_steps += 1
        assert handler_steps == 8  # 4 iterations x 2 states

        # Return: resume context 0 where it was interrupted.
        ctl.resume(context=0)
        assert ctl.current_state == interrupted_state
        assert ctl.counters == interrupted_counters
        steps = 0
        while ctl.active:
            ctl.step()
            steps += 1
        assert steps == 30 - 5

    def test_resume_idle_context_rejected(self):
        ctl = self.make()
        with pytest.raises(SPUProgramError):
            ctl.resume(context=0)  # never started

    def test_resume_completed_context_rejected(self):
        ctl = self.make()
        ctl.go(context=1)
        while ctl.active:
            ctl.step()
        with pytest.raises(SPUProgramError):
            ctl.resume(context=1)

    def test_stop_still_resets(self):
        ctl = self.make()
        ctl.go(context=0)
        ctl.step()
        ctl.stop()
        assert ctl.counters == (30, 0)
        assert ctl.current_state == ctl.idle_state

    def test_contexts_isolated(self):
        ctl = self.make()
        ctl.go(context=0)
        for _ in range(5):
            ctl.step()
        ctl.suspend()
        ctl.switch_context(1)
        assert ctl.current_state == ctl.idle_state  # context 1 untouched
        ctl.switch_context(0)
        assert ctl.current_state != ctl.idle_state


class TestMMIOExceptionPath:
    def test_suspend_and_resume_via_mmio(self):
        """A simulated handler suspends, computes unrouted, and resumes.

        The main loop routes paddw's second operand to MM2; the handler
        section runs the same instruction unrouted; after RESUME the routing
        picks up exactly where it stopped.
        """
        src = f"""
            mov r14, {DEFAULT_MMIO_BASE}
            mov r15, 1
            stw [r14], r15        ; GO context 0
            paddw mm0, mm1        ; routed (reads mm2 instead)
            paddw mm0, mm1        ; routed
            mov r15, 0
            stw [r14], r15        ; "exception": suspend
            paddw mm3, mm1        ; handler work: must NOT be routed
            mov r15, 9            ; GO | RESUME
            stw [r14], r15
            paddw mm0, mm1        ; routed again
            halt
        """
        machine = Machine(assemble(src))
        machine.state.write(MM[0], simd.join([0, 0, 0, 0], 16))
        machine.state.write(MM[1], simd.join([1, 1, 1, 1], 16))
        machine.state.write(MM[2], simd.join([100, 100, 100, 100], 16))
        machine.state.write(MM[3], simd.join([0, 0, 0, 0], 16))
        ctl = SPUController(config=CONFIG_D)
        builder = SPUProgramBuilder(config=CONFIG_D)
        route = halfword_route([(2, 0), (2, 1), (2, 2), (2, 3)])
        # The counter sees every dynamic instruction while active (§4): two
        # routed adds, the handler-entry mov, the suspending store (which
        # advances before it executes), then — after the resume — one more
        # routed add.  Five states, one pass.
        builder.loop([{1: route}, {1: route}, None, None, {1: route}], iterations=1)
        ctl.load_program(builder.build())
        attach_spu(machine, ctl)
        machine.run()
        # Three routed adds of MM2 (+100 each) landed in mm0:
        assert simd.split(machine.state.mmx[0], 16).tolist() == [300] * 4
        # The handler's add used the architectural mm1 (+1):
        assert simd.split(machine.state.mmx[3], 16).tolist() == [1] * 4
        assert not ctl.active  # counter exhausted after the third routed add

"""Tests for crossbar configurations and route semantics."""

import pytest

from repro.errors import RouteError
from repro.core import (
    CONFIG_A,
    CONFIG_B,
    CONFIG_C,
    CONFIG_D,
    CONFIGS,
    CrossbarConfig,
    SPURegister,
    get_config,
)


class TestGeometry:
    def test_published_configs(self):
        """Table 1 rows: crossbar shapes and port widths."""
        assert (CONFIG_A.in_ports, CONFIG_A.out_ports, CONFIG_A.port_bits) == (64, 32, 8)
        assert (CONFIG_B.in_ports, CONFIG_B.out_ports, CONFIG_B.port_bits) == (32, 32, 8)
        assert (CONFIG_C.in_ports, CONFIG_C.out_ports, CONFIG_C.port_bits) == (32, 16, 16)
        assert (CONFIG_D.in_ports, CONFIG_D.out_ports, CONFIG_D.port_bits) == (16, 16, 16)

    def test_all_feed_four_operand_buses(self):
        for config in CONFIGS.values():
            assert config.out_bits == 256

    def test_register_reach(self):
        assert CONFIG_A.window_regs == 8 and CONFIG_A.full_register_reach
        assert CONFIG_B.window_regs == 4 and not CONFIG_B.full_register_reach
        assert CONFIG_C.window_regs == 8 and CONFIG_C.full_register_reach
        assert CONFIG_D.window_regs == 4

    def test_route_bits_match_paper_formula(self):
        """Figure 6 shows 192 interconnect bits for config A (32×log2 64)."""
        assert CONFIG_A.route_bits == 192
        assert CONFIG_B.route_bits == 160
        assert CONFIG_C.route_bits == 80
        assert CONFIG_D.route_bits == 64

    def test_get_config(self):
        assert get_config("a") is CONFIG_A
        with pytest.raises(RouteError):
            get_config("E")

    def test_invalid_geometry_rejected(self):
        with pytest.raises(RouteError):
            CrossbarConfig(name="bad", in_ports=16, out_ports=8, port_bits=16)
        with pytest.raises(RouteError):
            CrossbarConfig(name="bad", in_ports=16, out_ports=16, port_bits=12)
        with pytest.raises(RouteError):
            CrossbarConfig(name="bad", in_ports=128, out_ports=16, port_bits=16)


class TestRouteValidation:
    def test_byte_route_length(self):
        with pytest.raises(RouteError):
            CONFIG_A.check_route((0,) * 4)

    def test_selector_out_of_window(self):
        # Config B addresses 32 bytes (MM0..MM3); byte 40 is out of reach.
        CONFIG_A.check_route((40,) * 8)
        with pytest.raises(RouteError):
            CONFIG_B.check_route((40,) * 8)

    def test_none_is_straight(self):
        CONFIG_A.check_route((None,) * 8)
        CONFIG_D.check_route((None,) * 4)

    def test_non_int_selector(self):
        with pytest.raises(RouteError):
            CONFIG_A.check_route(("x",) * 8)

    def test_byte_route_halfword_conversion(self):
        route = CONFIG_D.check_byte_route((4, 5, 12, 13, None, None, 0, 1))
        assert route == (2, 6, None, 0)

    def test_halfword_tearing_rejected(self):
        # bytes (5,4) reversed — not an aligned half-word
        with pytest.raises(RouteError):
            CONFIG_D.check_byte_route((5, 4, None, None, None, None, None, None))
        # odd base byte
        with pytest.raises(RouteError):
            CONFIG_D.check_byte_route((3, 4, None, None, None, None, None, None))
        # half straight, half routed
        with pytest.raises(RouteError):
            CONFIG_D.check_byte_route((4, None, None, None, None, None, None, None))

    def test_byte_config_accepts_any_byte_shuffle(self):
        CONFIG_A.check_byte_route((63, 0, 17, 33, 5, 5, 5, 5))


class TestApply:
    def make_register(self):
        reg = SPURegister()
        for i in range(8):
            reg.write_reg(i, int.from_bytes(bytes(range(i * 8, i * 8 + 8)), "little"))
        return reg

    def test_apply_none_returns_straight(self):
        reg = self.make_register()
        assert CONFIG_A.apply(None, reg, 0xDEAD) == 0xDEAD

    def test_apply_full_route(self):
        reg = self.make_register()
        value = CONFIG_A.apply((63, 62, 61, 60, 59, 58, 57, 56), reg, 0)
        assert value == int.from_bytes(bytes([63, 62, 61, 60, 59, 58, 57, 56]), "little")

    def test_apply_mixed_straight(self):
        reg = self.make_register()
        straight = int.from_bytes(bytes([0xAA] * 8), "little")
        value = CONFIG_A.apply((8, None, 9, None, None, None, None, None), reg, straight)
        out = value.to_bytes(8, "little")
        assert out[0] == 8 and out[1] == 0xAA and out[2] == 9 and out[3] == 0xAA

    def test_apply_halfword_config(self):
        reg = self.make_register()
        # granule 4 = bytes 8,9 of the register file (MM1 low half-word)
        value = CONFIG_D.apply((4, 4, None, None), reg, 0)
        out = value.to_bytes(8, "little")
        assert out[0] == 8 and out[1] == 9 and out[2] == 8 and out[3] == 9
        assert out[4:] == b"\x00" * 4

    def test_apply_rejects_illegal_route(self):
        reg = self.make_register()
        with pytest.raises(RouteError):
            CONFIG_D.apply((99, None, None, None), reg, 0)

    def test_window_limit_enforced_at_apply(self):
        reg = self.make_register()
        # Config D window = 4 registers = 16 half-words; selector 15 legal, 16 not.
        CONFIG_D.apply((15, None, None, None), reg, 0)
        with pytest.raises(RouteError):
            CONFIG_D.apply((16, None, None, None), reg, 0)

"""Tests for the MMIO programming path and pipeline attachment."""

import numpy as np
import pytest

from repro import simd
from repro.errors import SPUProgramError
from repro.cpu import Machine
from repro.core import (
    CONFIG_D,
    DEFAULT_MMIO_BASE,
    REG_CNTR0,
    REG_CONFIG,
    REG_STATUS,
    STATE_BASE,
    STATE_STRIDE,
    SPUController,
    SPUMMIO,
    SPUProgramBuilder,
    SPUState,
    attach_spu,
    encode_state,
    halfword_route,
)
from repro.isa import MM, R, assemble


def loop_program(body, iterations, config=CONFIG_D):
    b = SPUProgramBuilder(config=config)
    b.loop(body, iterations)
    return b.build()


class TestMMIODirect:
    def make(self):
        ctl = SPUController()
        return ctl, SPUMMIO(ctl)

    def test_status_idle(self):
        _, dev = self.make()
        status = dev.mmio_load(REG_STATUS, 8)
        assert status & 1 == 0
        assert (status >> 8) & 0xFF == 127

    def test_full_programming_sequence(self):
        ctl, dev = self.make()
        # Stage a 2-state straight loop: counter 6 (3 iterations x 2 states).
        word0 = encode_state(SPUState(cntr=0, next0=127, next1=1), CONFIG_D)
        word1 = encode_state(SPUState(cntr=0, next0=127, next1=0), CONFIG_D)
        dev.mmio_store(STATE_BASE, 8, word0)
        dev.mmio_store(STATE_BASE + STATE_STRIDE, 8, word1)
        dev.mmio_store(REG_CNTR0, 8, 6)
        dev.mmio_store(REG_CONFIG, 8, 1)  # GO
        assert ctl.active
        steps = 0
        while ctl.active:
            ctl.step()
            steps += 1
        assert steps == 6

    def test_partial_word_stores(self):
        ctl, dev = self.make()
        word = encode_state(SPUState(cntr=0, next0=127, next1=0), CONFIG_D)
        # write the state word as two 4-byte halves
        dev.mmio_store(STATE_BASE, 4, word & 0xFFFFFFFF)
        dev.mmio_store(STATE_BASE + 4, 4, word >> 32)
        dev.mmio_store(REG_CNTR0, 4, 2)
        dev.mmio_store(REG_CONFIG, 4, 1)
        assert ctl.active

    def test_stop_via_config(self):
        ctl, dev = self.make()
        ctl.load_program(loop_program([None], 5))
        dev.mmio_store(REG_CONFIG, 8, 1)  # GO with host-loaded program
        assert ctl.active
        dev.mmio_store(REG_CONFIG, 8, 0)
        assert not ctl.active

    def test_go_without_program(self):
        _, dev = self.make()
        with pytest.raises(SPUProgramError):
            dev.mmio_store(REG_CONFIG, 8, 1)

    def test_status_readonly(self):
        _, dev = self.make()
        with pytest.raises(SPUProgramError):
            dev.mmio_store(REG_STATUS, 8, 1)

    def test_unmapped_offset(self):
        _, dev = self.make()
        with pytest.raises(SPUProgramError):
            dev.mmio_store(0x48, 8, 0)
        with pytest.raises(SPUProgramError):
            dev.mmio_load(0x48, 8)

    def test_state_slot_readback(self):
        _, dev = self.make()
        dev.mmio_store(STATE_BASE + 2 * STATE_STRIDE, 8, 0xABCD)
        assert dev.mmio_load(STATE_BASE + 2 * STATE_STRIDE, 8) == 0xABCD
        assert dev.mmio_load(STATE_BASE, 8) == 0  # unstaged state reads 0

    def test_state_beyond_capacity(self):
        _, dev = self.make()
        with pytest.raises(SPUProgramError):
            dev.mmio_store(STATE_BASE + 200 * STATE_STRIDE, 8, 1)

    def test_cross_boundary_store(self):
        _, dev = self.make()
        with pytest.raises(SPUProgramError):
            dev.mmio_store(STATE_BASE + STATE_STRIDE - 4, 8, 1)


class TestAttachment:
    def test_routes_applied_to_operands(self):
        """A routed paddw reads its second operand from another register."""
        src = f"""
            mov r3, {DEFAULT_MMIO_BASE}
            mov r4, 1
            stw [r3], r4
            paddw mm0, mm1
            halt
        """
        machine = Machine(assemble(src))
        machine.state.write(MM[0], simd.join([1, 1, 1, 1], 16))
        machine.state.write(MM[1], simd.join([10, 10, 10, 10], 16))
        machine.state.write(MM[2], simd.join([100, 200, 300, 400], 16))
        ctl = SPUController()
        # one-instruction "loop", 1 iteration: route slot 1 to MM2's lanes
        ctl.load_program(loop_program([{1: halfword_route([(2, 0), (2, 1), (2, 2), (2, 3)])}], 1))
        attach_spu(machine, ctl)
        machine.run()
        assert simd.split(machine.state.mmx[0], 16).tolist() == [101, 201, 301, 401]

    def test_inactive_spu_is_transparent(self):
        src = "paddw mm0, mm1\nhalt"
        machine = Machine(assemble(src))
        machine.state.write(MM[0], simd.join([1, 2, 3, 4], 16))
        machine.state.write(MM[1], simd.join([1, 1, 1, 1], 16))
        ctl = SPUController()
        attach_spu(machine, ctl)
        machine.run()
        assert simd.split(machine.state.mmx[0], 16).tolist() == [2, 3, 4, 5]

    def test_straight_states_advance_but_do_not_route(self):
        src = f"""
            mov r3, {DEFAULT_MMIO_BASE}
            mov r4, 1
            stw [r3], r4
            paddw mm0, mm1
            paddw mm0, mm1
            halt
        """
        machine = Machine(assemble(src))
        machine.state.write(MM[1], simd.join([1, 1, 1, 1], 16))
        ctl = SPUController()
        ctl.load_program(loop_program([None, None], 1))
        spu = attach_spu(machine, ctl)
        stats = machine.run()
        assert simd.split(machine.state.mmx[0], 16).tolist() == [2, 2, 2, 2]
        assert stats.spu_routed == 0
        assert spu.stats.instructions_seen == 2

    def test_scalar_instructions_consume_states(self):
        """Counters count all dynamic instructions, including scalar (§4)."""
        src = f"""
            mov r3, {DEFAULT_MMIO_BASE}
            mov r4, 1
            stw [r3], r4
            add r5, 1
            add r5, 1
            add r5, 1
            halt
        """
        machine = Machine(assemble(src))
        ctl = SPUController()
        ctl.load_program(loop_program([None], 3))
        attach_spu(machine, ctl)
        machine.run()
        assert not ctl.active  # exactly consumed by the three adds
        assert ctl.stats.steps == 3

    def test_store_operand_routed(self):
        """Store data flows through the crossbar (transpose relies on it)."""
        src = f"""
            mov r3, {DEFAULT_MMIO_BASE}
            mov r4, 1
            stw [r3], r4
            mov r1, 0x200
            movq [r1], mm0
            halt
        """
        machine = Machine(assemble(src))
        machine.state.write(MM[0], simd.join([1, 2, 3, 4], 16))
        machine.state.write(MM[5], simd.join([9, 8, 7, 6], 16))
        ctl = SPUController(config=CONFIG_D)
        # window limit: CONFIG_D reaches MM0..MM3 only; use CONFIG_C for MM5
        from repro.core import CONFIG_C
        ctl = SPUController(config=CONFIG_C)
        route = halfword_route([(5, 0), (5, 1), (5, 2), (5, 3)])
        b = SPUProgramBuilder(config=CONFIG_C)
        b.loop([None, {1: route}], 1)  # mov r1 state, then the store state
        ctl.load_program(b.build())
        attach_spu(machine, ctl)
        machine.run()
        assert machine.memory.read_array(0x200, 4, np.int16).tolist() == [9, 8, 7, 6]

    def test_mmio_base_none_skips_window(self):
        machine = Machine(assemble("halt"))
        ctl = SPUController()
        attach_spu(machine, ctl, mmio_base=None)
        machine.run()  # store-free program; no MMIO window mapped

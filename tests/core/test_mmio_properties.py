"""Property tests for the MMIO staging path and config-C kernel sweep."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CONFIG_C,
    CONFIG_D,
    REG_CNTR0,
    REG_CONFIG,
    STATE_BASE,
    STATE_STRIDE,
    SPUController,
    SPUMMIO,
    SPUState,
    encode_state,
)


class TestPartialStoreEquivalence:
    """Any split of a state-word store into byte/halfword/word pieces must
    assemble the same staged image as one whole store."""

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(0, 2**55 - 1),  # a state word (config D uses 55 bits)
        st.lists(st.sampled_from([1, 2, 4]), min_size=1, max_size=8),
    )
    def test_chunked_staging(self, word, chunk_sizes):
        whole = SPUMMIO(SPUController())
        whole.mmio_store(STATE_BASE, 8, word)

        pieces = SPUMMIO(SPUController())
        offset = 0
        for size in chunk_sizes:
            if offset + size > 8:
                break
            pieces.mmio_store(
                STATE_BASE + offset, size, (word >> (8 * offset)) & ((1 << (8 * size)) - 1)
            )
            offset += size
        while offset < 8:
            pieces.mmio_store(STATE_BASE + offset, 1, (word >> (8 * offset)) & 0xFF)
            offset += 1
        assert pieces.mmio_load(STATE_BASE, 8) == whole.mmio_load(STATE_BASE, 8)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 126), st.integers(1, 1000))
    def test_staged_program_roundtrip(self, next1, counter):
        """Stage an encoded state via MMIO, GO, and observe the decode."""
        controller = SPUController()
        device = SPUMMIO(controller)
        state = SPUState(cntr=0, next0=127, next1=127)
        device.mmio_store(STATE_BASE, 8, encode_state(state, CONFIG_D))
        device.mmio_store(REG_CNTR0, 8, counter)
        device.mmio_store(REG_CONFIG, 8, 1)
        assert controller.active
        program = controller.program()
        assert program.counter_init[0] == counter
        assert program.states[0] == state


class TestConfigCKernels:
    """Configuration C: half-word granularity with full 8-register reach."""

    @pytest.mark.parametrize(
        "cls_name", ["DotProduct", "MatrixTranspose", "FIR12", "DCT"]
    )
    def test_kernels_work_under_config_c(self, cls_name):
        from repro.kernels import make_kernel

        kernel = make_kernel(cls_name, config=CONFIG_C)
        kernel.verify()
        comparison = kernel.compare()
        assert comparison.speedup >= 0.999

    def test_config_c_matches_config_d_on_window_kernels(self):
        """Paper kernels fit config D's window; C's extra reach buys nothing."""
        from repro.kernels import TransposeKernel

        removed_c = TransposeKernel(config=CONFIG_C).removed_permutes
        removed_d = TransposeKernel(config=CONFIG_D).removed_permutes
        assert removed_c == removed_d

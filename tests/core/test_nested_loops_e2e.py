"""End-to-end: two-level zero-overhead looping on a running program (§4).

The pair of counters supports two nested loops: CNTR0 covers the inner
chain (auto-reloading on exit), CNTR1 counts outer-chain visits.  Here a
real nested MMX program — outer loop over rows, inner loop over column
groups — runs with a two-level controller program that routes the inner
computation, and the dynamic alignment across all iterations is verified
bit-exactly.
"""

import numpy as np
import pytest

from repro import simd
from repro.core import (
    CONFIG_D,
    DEFAULT_MMIO_BASE,
    SPUController,
    SPUProgramBuilder,
    attach_spu,
    halfword_route,
)
from repro.cpu import Machine
from repro.isa import MM, R, assemble

OUTER = 4  # rows
INNER = 3  # column groups per row


def nested_program(routed: bool) -> str:
    """Nested loop: rows × column-groups; optionally permute-free."""
    swap = "" if routed else "        pshufw mm0, mm0, 0x4E\n"
    return f"""
        mov r10, {DEFAULT_MMIO_BASE}
        mov r1, 0x1000      ; source
        mov r2, 0x8000      ; destination
        mov r0, {OUTER}
        mov r11, 1
        stw [r10], r11      ; GO
    rows:
        mov r3, {INNER}
    cols:
        movq mm0, [r1]
{swap}        paddw mm0, mm1
        movq [r2], mm0
        add r1, 8
        add r2, 8
        loop r3, cols
        add r4, 1           ; per-row bookkeeping (outer-chain instructions)
        loop r0, rows
        halt
    """


class TestTwoLevelEndToEnd:
    def run_machine(self, source, spu_program=None):
        machine = Machine(assemble(source))
        data = np.arange(-24, 24, dtype=np.int16)
        machine.memory.write_array(0x1000, data, np.int16)
        machine.state.write(MM[1], simd.join([10, 20, 30, 40], 16))
        if spu_program is not None:
            controller = SPUController(config=CONFIG_D)
            controller.load_program(spu_program)
            attach_spu(machine, controller)
        machine.run()
        return machine.memory.read_array(0x8000, 4 * OUTER * INNER, np.int16)

    def build_two_level(self):
        # Inner chain: one state per inner-body dynamic instruction; the
        # swapped-halves route replaces the deleted pshufw (0x4E swaps the
        # 32-bit halves).
        swap = halfword_route([(0, 2), (0, 3), (0, 0), (0, 1)])
        builder = SPUProgramBuilder(config=CONFIG_D)
        inner = [None, {0: swap}, None, None, None, None]  # movq, paddw(routed), store, add, add, loop
        outer = [None, None, None]  # mov r3 (re-entry), add r4, loop r0
        # Dynamic order per outer iteration: [mov r3] inner*INNER [add r4, loop r0]
        # The builder's two_level shape is inner^n then outer; match it by
        # folding the `mov r3` into the outer chain *before* re-entry:
        builder.two_level_loop(inner, INNER, outer, OUTER)
        return builder.build()

    def test_nested_routing_bit_exact(self):
        # Align by issuing GO right before the first inner iteration: move
        # the GO store after `mov r3` by using a source variant.
        source = nested_program(routed=True).replace(
            f"""        mov r11, 1
        stw [r10], r11      ; GO
    rows:
        mov r3, {INNER}
    cols:""",
            f"""        mov r11, 1
    rows:
        mov r3, {INNER}
        stw [r10], r11      ; GO (re-issued each row: restarts the chain)
    cols:""",
        )
        # With GO per row, a simple single-level loop suffices per row:
        builder = SPUProgramBuilder(config=CONFIG_D)
        swap = halfword_route([(0, 2), (0, 3), (0, 0), (0, 1)])
        builder.loop([None, {0: swap}, None, None, None, None], INNER,
                     exit_to=None)
        spu_program = builder.build()
        # ... but the counter must also absorb the outer-chain instructions
        # (add r4, loop r0, mov r3, stw) between rows?  No: the chain goes
        # idle exactly at the inner `loop r3` of the last column group, and
        # the next row's GO reactivates it.  That is the §4 idiom for
        # nesting via re-activation.
        baseline = self.run_machine(nested_program(routed=False))
        routed = self.run_machine(source, spu_program)
        assert baseline.tolist() == routed.tolist()

    def test_two_counter_variant_bit_exact(self):
        """The genuine two-counter nesting: one GO for the whole nest."""
        # Restructure: hoist `mov r3` above GO for the first row and charge
        # the per-row `mov r3` to the outer chain.
        source = nested_program(routed=True).replace(
            f"""        mov r11, 1
        stw [r10], r11      ; GO
    rows:
        mov r3, {INNER}
    cols:""",
            f"""        mov r11, 1
        mov r3, {INNER}
        stw [r10], r11      ; one GO for the whole nest
    rows:
    cols:""",
        ).replace(
            "        add r4, 1           ; per-row bookkeeping (outer-chain instructions)\n"
            "        loop r0, rows",
            f"        add r4, 1\n        mov r3, {INNER}\n        loop r0, rows",
        )
        swap = halfword_route([(0, 2), (0, 3), (0, 0), (0, 1)])
        builder = SPUProgramBuilder(config=CONFIG_D)
        inner = [None, {0: swap}, None, None, None, None]
        outer = [None, None, None]  # add r4, mov r3, loop r0
        builder.two_level_loop(inner, INNER, outer, OUTER)
        spu_program = builder.build()
        baseline = self.run_machine(nested_program(routed=False))
        routed = self.run_machine(source, spu_program)
        assert baseline.tolist() == routed.tolist()

    def test_counter_values_match_paper_formula(self):
        spu_program = self.build_two_level()
        assert spu_program.counter_init == (INNER * 6, OUTER * 3)


class TestFigure3Counts:
    """§2.2's arithmetic: 8 merges per 4×4 MMX transpose, 4 ops with the SPU."""

    def test_mmx_tile_uses_eight_merges(self):
        from repro.kernels import TransposeKernel
        kernel = TransposeKernel(n=4)
        program = kernel.mmx_program()
        merges = [i for i in program if i.name.startswith("punpck")]
        assert len(merges) == 8  # "a succession of eight merge instructions"

    def test_spu_tile_needs_no_merges(self):
        from repro.kernels import TransposeKernel
        kernel = TransposeKernel(n=4)
        program, _ = kernel.spu_programs()
        merges = [i for i in program if i.name.startswith("punpck")]
        assert merges == []
        # What remains per tile is the minimum: 4 loads and 4 routed stores.
        movqs = [i for i in program if i.name == "movq"]
        assert len(movqs) == 8

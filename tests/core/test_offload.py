"""Tests for the automatic permute off-load pass (§4's automation claim)."""

import numpy as np
import pytest

from repro import simd
from repro.cpu import Machine
from repro.core import (
    CONFIG_A,
    CONFIG_B,
    CONFIG_D,
    DEFAULT_MMIO_BASE,
    OffloadError,
    SPUController,
    attach_spu,
    byte_sources,
    find_loop,
    is_pure_permute,
    mmx_source_slots,
    offload_loop,
)
from repro.isa import MM, R, assemble

GO_PREAMBLE = f"""
    mov r14, {DEFAULT_MMIO_BASE}
    mov r15, 1
    stw [r14], r15
"""


def run_offloaded(source, label, iterations, config=CONFIG_D, setup=None, live_out=()):
    """Offload, run MMX-only and SPU variants, return both machines + report."""
    program = assemble(source, "kernel")
    report = offload_loop(program, label, iterations, config, live_out=live_out)

    baseline = Machine(program)
    if setup:
        setup(baseline)
    baseline.run()

    machine = Machine(report.program)
    if setup:
        setup(machine)
    controller = SPUController(config=config)
    controller.load_program(report.spu_program)
    attach_spu(machine, controller)
    machine.run()
    return baseline, machine, report


class TestHelpers:
    def test_is_pure_permute(self):
        program = assemble(
            "punpcklwd mm0, mm1\nmovq mm0, mm1\nmovq mm0, [r1]\npsrlq mm0, 16\n"
            "psrlq mm0, 4\npacksswb mm0, mm1\npaddw mm0, mm1\nhalt"
        )
        flags = [is_pure_permute(i) for i in program]
        assert flags == [True, True, False, True, False, False, False, False]

    def test_byte_sources_movq(self):
        program = assemble("movq mm0, mm1\nhalt")
        assert byte_sources(program[0]) == [("b", i) for i in range(8)]

    def test_byte_sources_shifts(self):
        program = assemble("psrlq mm0, 16\npsllq mm0, 24\nhalt")
        assert byte_sources(program[0]) == [
            ("a", 2), ("a", 3), ("a", 4), ("a", 5), ("a", 6), ("a", 7), None, None,
        ]
        assert byte_sources(program[1]) == [
            None, None, None, ("a", 0), ("a", 1), ("a", 2), ("a", 3), ("a", 4),
        ]

    def test_byte_sources_unpack(self):
        program = assemble("punpcklwd mm0, mm1\npunpckhbw mm2, mm3\nhalt")
        assert byte_sources(program[0]) == [
            ("a", 0), ("a", 1), ("b", 0), ("b", 1), ("a", 2), ("a", 3), ("b", 2), ("b", 3),
        ]
        assert byte_sources(program[1]) == [
            ("a", 4), ("b", 4), ("a", 5), ("b", 5), ("a", 6), ("b", 6), ("a", 7), ("b", 7),
        ]

    def test_byte_sources_pshufw(self):
        program = assemble("pshufw mm0, mm1, 0x1B\nhalt")  # reverse
        assert byte_sources(program[0]) == [
            ("b", 6), ("b", 7), ("b", 4), ("b", 5), ("b", 2), ("b", 3), ("b", 0), ("b", 1),
        ]

    def test_mmx_source_slots(self):
        program = assemble(
            "paddw mm0, mm1\nmovq mm0, mm1\nmovq [r1], mm0\nmovq mm0, [r1]\n"
            "psllw mm0, 2\npmaddwd mm0, [r1]\nhalt"
        )
        assert mmx_source_slots(program[0]) == [0, 1]
        assert mmx_source_slots(program[1]) == [1]
        assert mmx_source_slots(program[2]) == [1]
        assert mmx_source_slots(program[3]) == []
        assert mmx_source_slots(program[4]) == [0]
        assert mmx_source_slots(program[5]) == [0]

    def test_find_loop(self):
        program = assemble("nop\ntop: nop\nnop\nloop r0, top\nhalt")
        assert find_loop(program, "top") == (1, 3)

    def test_find_loop_rejects_inner_branch(self):
        program = assemble("top: jz skip\nskip: nop\nloop r0, top\nhalt")
        with pytest.raises(OffloadError):
            find_loop(program, "top")

    def test_find_loop_requires_back_branch(self):
        program = assemble("top: nop\nhalt")
        with pytest.raises(OffloadError):
            find_loop(program, "top")


class TestDotProductOffload:
    SOURCE = """
        mov r0, 8
        mov r1, 0x100
        mov r2, 0x400
    """ + GO_PREAMBLE + """
    loop:
        movq mm0, [r1]
        movq mm1, [r1+8]
        movq mm2, mm0
        punpckhwd mm2, mm1
        punpcklwd mm0, mm1
        movq mm3, mm0
        pmulhw mm3, mm2
        pmullw mm0, mm2
        movq [r2], mm3
        movq [r2+8], mm0
        add r1, 16
        add r2, 16
        loop r0, loop
        halt
    """

    @staticmethod
    def fill(machine):
        rng = np.random.default_rng(7)
        data = rng.integers(-1000, 1000, size=64, dtype=np.int16)
        machine.memory.write_array(0x100, data, np.int16)

    def test_all_permutes_removed(self):
        program = assemble(self.SOURCE)
        report = offload_loop(program, "loop", 8, CONFIG_D)
        assert report.removed_count == 4  # movq x2 + two unpacks
        names = [program[i].name for i in report.removed]
        assert names == ["movq", "punpckhwd", "punpcklwd", "movq"]

    def test_results_identical(self):
        baseline, spu, report = run_offloaded(self.SOURCE, "loop", 8, setup=self.fill)
        base_out = baseline.memory.read_array(0x400, 64, np.uint16)
        spu_out = spu.memory.read_array(0x400, 64, np.uint16)
        assert base_out.tolist() == spu_out.tolist()

    def test_spu_variant_faster(self):
        program = assemble(self.SOURCE)
        report = offload_loop(program, "loop", 8, CONFIG_D)
        baseline = Machine(program)
        self.fill(baseline)
        base_stats = baseline.run()
        machine = Machine(report.program)
        self.fill(machine)
        controller = SPUController(config=CONFIG_D)
        controller.load_program(report.spu_program)
        attach_spu(machine, controller)
        spu_stats = machine.run()
        assert spu_stats.cycles < base_stats.cycles
        assert spu_stats.instructions < base_stats.instructions

    def test_counter_matches_body_length(self):
        program = assemble(self.SOURCE)
        report = offload_loop(program, "loop", 8, CONFIG_D)
        body_len = report.loop_end - report.loop_start + 1 - report.removed_count
        assert report.spu_program.counter_init[0] == 8 * body_len


class TestConstraints:
    def test_live_out_keeps_last_writer(self):
        source = """
            mov r0, 4
        """ + GO_PREAMBLE + """
        loop:
            punpcklwd mm0, mm1
            paddw mm2, mm0
            loop r0, loop
            halt
        """
        program = assemble(source)
        # mm0 is live-out: the unpack must stay.
        report = offload_loop(program, "loop", 4, CONFIG_D, live_out=(MM[0],))
        assert report.removed_count == 0
        assert "live-out" in list(report.kept.values())[0]

    def test_cross_iteration_self_dependence_kept(self):
        # punpcklwd mm0, mm1 feeds next iteration's own read of mm0:
        # removing it would change what mm0 holds at the next unpack.
        source = """
            mov r0, 4
        """ + GO_PREAMBLE + """
        loop:
            punpcklwd mm0, mm1
            movq [r1], mm0
            add r1, 8
            loop r0, loop
            halt
        """
        program = assemble(source)
        report = offload_loop(program, "loop", 4, CONFIG_D)
        # The store can be routed, but iteration i+1's unpack reads mm0 =
        # result of iteration i — a symbol that no longer exists anywhere.
        baseline = Machine(program)
        machine = Machine(report.program)
        baseline.state.write(MM[0], simd.join([1, 2, 3, 4], 16))
        machine.state.write(MM[0], simd.join([1, 2, 3, 4], 16))
        baseline.state.write(MM[1], simd.join([5, 6, 7, 8], 16))
        machine.state.write(MM[1], simd.join([5, 6, 7, 8], 16))
        baseline.state.write(R[1], 0x200)
        machine.state.write(R[1], 0x200)
        baseline.run()
        controller = SPUController(config=CONFIG_D)
        controller.load_program(report.spu_program)
        attach_spu(machine, controller)
        machine.run()
        assert (
            baseline.memory.read_array(0x200, 16, np.uint16).tolist()
            == machine.memory.read_array(0x200, 16, np.uint16).tolist()
        )

    def test_zero_shift_consumed_keeps_shift(self):
        # psrlq shifts in zeros that the add then consumes -> not removable.
        source = """
            mov r0, 4
        """ + GO_PREAMBLE + """
        loop:
            movq mm0, [r1]
            psrlq mm0, 16
            paddw mm2, mm0
            add r1, 8
            loop r0, loop
            halt
        """
        program = assemble(source)
        report = offload_loop(program, "loop", 4, CONFIG_D)
        assert report.removed_count == 0
        assert "zero" in list(report.kept.values())[0]

    def test_window_restriction_blocks_config_b(self):
        # Permute sourcing MM5 is out of config B's 4-register window.
        source = """
            mov r0, 4
        """ + GO_PREAMBLE + """
        loop:
            movq mm0, mm5
            paddw mm0, mm1
            movq [r1], mm0
            add r1, 8
            loop r0, loop
            halt
        """
        program = assemble(source)
        report_a = offload_loop(program, "loop", 4, CONFIG_A)
        assert report_a.removed_count == 1
        report_b = offload_loop(program, "loop", 4, CONFIG_B)
        assert report_b.removed_count == 0
        assert "config B" in list(report_b.kept.values())[0]

    def test_byte_granularity_needs_byte_config(self):
        # punpcklbw interleaves single bytes — illegal on 16-bit-port configs.
        source = """
            mov r0, 4
        """ + GO_PREAMBLE + """
        loop:
            movq mm0, [r1]
            punpcklbw mm0, mm1
            movq [r2], mm0
            add r1, 8
            add r2, 8
            loop r0, loop
            halt
        """
        program = assemble(source)
        report_d = offload_loop(program, "loop", 4, CONFIG_D)
        assert report_d.removed_count == 0
        report_a = offload_loop(program, "loop", 4, CONFIG_A)
        assert report_a.removed_count == 1

    def test_bad_iterations(self):
        program = assemble("top: nop\nloop r0, top\nhalt")
        with pytest.raises(OffloadError):
            offload_loop(program, "top", 0)


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_pshufw_chain(self, seed):
        source = """
            mov r0, 6
        """ + GO_PREAMBLE + """
        loop:
            movq mm0, [r1]
            pshufw mm2, mm0, 0x1B
            pmullw mm2, mm1
            movq [r2], mm2
            add r1, 8
            add r2, 8
            loop r0, loop
            halt
        """
        rng = np.random.default_rng(seed)
        data = rng.integers(-300, 300, size=24, dtype=np.int16)
        coeff = rng.integers(-50, 50, size=4, dtype=np.int16)

        def setup(machine):
            machine.memory.write_array(0x100, data, np.int16)
            machine.state.write(MM[1], simd.join(coeff.tolist(), 16))
            machine.state.write(R[1], 0x100)
            machine.state.write(R[2], 0x400)

        baseline, spu, report = run_offloaded(source, "loop", 6, setup=setup)
        assert report.removed_count == 1
        assert (
            baseline.memory.read_array(0x400, 24, np.uint16).tolist()
            == spu.memory.read_array(0x400, 24, np.uint16).tolist()
        )


class TestKnownZero:
    def test_zero_register_unlocks_zero_shift(self):
        """With a pre-loop pxor'd register declared, the zero-filling shift
        becomes removable: its zeros route from the cleared register."""
        from repro.isa import MM
        source = """
            mov r0, 4
            pxor mm3, mm3
        """ + GO_PREAMBLE + """
        loop:
            movq mm0, [r1]
            psrlq mm0, 16
            paddw mm2, mm0
            add r1, 8
            loop r0, loop
            halt
        """
        program = assemble(source)
        without = offload_loop(program, "loop", 4, CONFIG_D)
        assert without.removed_count == 0
        with_zero = offload_loop(program, "loop", 4, CONFIG_D,
                                 known_zero=(MM[3],))
        assert with_zero.removed_count == 1

        def run(prog, spu_program=None):
            machine = Machine(prog)
            machine.memory.write_array(
                0x100, np.arange(1, 33, dtype=np.int16), np.int16
            )
            machine.state.write(R[1], 0x100)
            if spu_program is not None:
                controller = SPUController(config=CONFIG_D)
                controller.load_program(spu_program)
                attach_spu(machine, controller)
            machine.run()
            return machine.state.mmx[2]

        assert run(program) == run(with_zero.program, with_zero.spu_program)

    def test_known_zero_written_in_body_rejected(self):
        from repro.errors import ReproError
        from repro.isa import MM
        source = """
            mov r0, 4
        """ + GO_PREAMBLE + """
        loop:
            pxor mm3, mm3
            paddw mm2, mm3
            loop r0, loop
            halt
        """
        with pytest.raises(ReproError):
            offload_loop(assemble(source), "loop", 4, CONFIG_D,
                         known_zero=(MM[3],))

    def test_zero_idiom_recognition(self):
        from repro.core.offload import is_zero_idiom
        program = assemble(
            "pxor mm0, mm0\npsubw mm1, mm1\npandn mm2, mm2\n"
            "pxor mm0, mm1\npaddw mm0, mm0\nhalt"
        )
        flags = [is_zero_idiom(i) for i in program]
        assert flags == [True, True, True, False, False, False]

    def test_autopilot_infers_known_zero(self):
        from repro.core import offload_program
        source = """
            mov r0, 4
            mov r1, 0x100
            pxor mm3, mm3
        loop:
            movq mm0, [r1]
            psrlq mm0, 16
            paddw mm2, mm0
            movq [r2], mm2
            add r1, 8
            add r2, 8
            loop r0, loop
            halt
        """
        result = offload_program(assemble(source))
        assert result.removed >= 1  # the shift goes despite its zero bytes

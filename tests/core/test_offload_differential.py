"""Differential testing of the off-load pass on randomized loops.

Hypothesis generates random straight-line MMX loop bodies (arithmetic,
multiplies, permutes, copies, shifts, loads and stores over the config-D
register window); the pass transforms each loop, and the MMX-only and
MMX+SPU runs must leave bit-identical store streams.  This exercises the
symbolic provenance engine, route legality, the back-edge check, the
fallback blame logic, the controller sequencing and the crossbar together.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CONFIG_A,
    CONFIG_D,
    DEFAULT_MMIO_BASE,
    SPUController,
    attach_spu,
    offload_loop,
)
from repro.cpu import Machine
from repro.isa import MM, ProgramBuilder

DATA_BASE = 0x1000
OUT_BASE = 0x8000
ITERATIONS = 5

#: MMX registers the generator uses (config D's window).
REGS = [f"mm{i}" for i in range(4)]

_reg = st.sampled_from(REGS)
_two_regs = st.tuples(_reg, _reg)


@st.composite
def loop_bodies(draw):
    """A random loop body: list of (emitter-name, operands) actions."""
    length = draw(st.integers(min_value=3, max_value=14))
    body = []
    for _ in range(length):
        kind = draw(
            st.sampled_from(
                [
                    "paddw", "psubw", "pmullw", "pxor",
                    "punpcklwd", "punpckhwd", "punpckldq", "punpckhdq",
                    "movq_rr", "pshufw", "psrlq", "psllq", "load", "store",
                ]
            )
        )
        if kind in ("psrlq", "psllq"):
            body.append((kind, (draw(_reg), draw(st.sampled_from([8, 16, 32])))))
        elif kind == "pshufw":
            body.append((kind, (draw(_reg), draw(_reg), draw(st.integers(0, 255)))))
        elif kind == "load":
            body.append((kind, (draw(_reg), draw(st.integers(0, 3)) * 8)))
        elif kind == "store":
            body.append((kind, (draw(_reg), draw(st.integers(0, 3)) * 8)))
        else:
            body.append((kind, draw(_two_regs)))
    # Guarantee at least one store so the comparison observes something.
    body.append(("store", (draw(_reg), 32)))
    return body


def build_program(body):
    b = ProgramBuilder("random-loop")
    b.mov("r14", DEFAULT_MMIO_BASE)
    b.mov("r0", ITERATIONS)
    b.mov("r1", DATA_BASE)
    b.mov("r2", OUT_BASE)
    b.mov("r15", 1)
    b.stw("[r14]", "r15")  # GO immediately before the loop
    b.label("loop")
    for kind, operands in body:
        if kind == "movq_rr":
            b.movq(*operands)
        elif kind == "load":
            reg, offset = operands
            b.movq(reg, f"[r1+{offset}]")
        elif kind == "store":
            reg, offset = operands
            b.movq(f"[r2+{offset}]", reg)
        elif kind == "pshufw":
            reg, src, order = operands
            b.pshufw(reg, src, order)
        elif kind in ("psrlq", "psllq"):
            reg, count = operands
            b.emit(kind, reg, count)
        else:
            b.emit(kind, *operands)
    b.add("r1", 8)
    b.add("r2", 48)
    b.loop("r0", "loop")
    b.halt()
    return b.build()


def run(program, spu_programs=None, config=CONFIG_D):
    machine = Machine(program)
    rng = np.random.default_rng(99)
    machine.memory.write_array(
        DATA_BASE, rng.integers(-3000, 3000, size=256, dtype=np.int16), np.int16
    )
    for index in range(4):
        machine.state.write(
            MM[index],
            int.from_bytes(
                rng.integers(0, 256, size=8, dtype=np.uint8).tobytes(), "little"
            ),
        )
    if spu_programs is not None:
        controller = SPUController(config=config)
        controller.load_program(spu_programs)
        attach_spu(machine, controller)
    machine.run()
    return machine.memory.read_array(OUT_BASE, ITERATIONS * 24 + 24, np.uint16)


class TestDifferentialOffload:
    @settings(max_examples=40, deadline=None)
    @given(loop_bodies())
    def test_stores_identical_config_d(self, body):
        program = build_program(body)
        report = offload_loop(program, "loop", ITERATIONS, CONFIG_D)
        baseline = run(program)
        transformed = run(report.program, report.spu_program, CONFIG_D)
        assert baseline.tolist() == transformed.tolist()

    @settings(max_examples=25, deadline=None)
    @given(loop_bodies())
    def test_stores_identical_config_a(self, body):
        """Config A admits byte-granularity routes the 16-bit configs reject."""
        program = build_program(body)
        report = offload_loop(program, "loop", ITERATIONS, CONFIG_A)
        baseline = run(program)
        transformed = run(report.program, report.spu_program, CONFIG_A)
        assert baseline.tolist() == transformed.tolist()

    @settings(max_examples=25, deadline=None)
    @given(loop_bodies())
    def test_config_a_removes_at_least_as_much(self, body):
        """More interconnect flexibility never hurts coverage."""
        program = build_program(body)
        removed_d = offload_loop(program, "loop", ITERATIONS, CONFIG_D).removed_count
        removed_a = offload_loop(program, "loop", ITERATIONS, CONFIG_A).removed_count
        assert removed_a >= removed_d

    @settings(max_examples=20, deadline=None)
    @given(loop_bodies())
    def test_transformed_never_longer(self, body):
        program = build_program(body)
        report = offload_loop(program, "loop", ITERATIONS, CONFIG_D)
        assert len(report.program) <= len(program)
        assert report.spu_program.counter_init[0] == ITERATIONS * (
            report.loop_end - report.loop_start + 1 - report.removed_count
        )

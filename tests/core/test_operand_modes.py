"""Tests for the §6 operand-mode extension (sign extension, negation).

"The SPU implemented in this study is relatively simple, allowing only equal
sub-word access ... additional modes could be added to the SPU, like sign
extension, negation, or even more complex operations" — implemented here as
per-granule route-entry transforms on an extended configuration D+.
"""

import numpy as np
import pytest

from repro import simd
from repro.errors import RouteError
from repro.cpu import Machine
from repro.core import (
    CONFIG_D,
    CONFIG_D_MODED,
    DEFAULT_MMIO_BASE,
    MODES,
    SPUController,
    SPUProgramBuilder,
    SPUState,
    attach_spu,
    decode_state,
    encode_state,
    halfword_route,
    split_entry,
    state_word_bits,
)
from repro.isa import MM, assemble


class TestConfigGeometry:
    def test_base_configs_have_no_modes(self):
        assert CONFIG_D.modes == ()
        assert CONFIG_D.mode_bits == 0

    def test_moded_config(self):
        assert set(CONFIG_D_MODED.modes) == {"neg", "sxb", "zxb"}
        assert CONFIG_D_MODED.mode_bits == 2  # 3 modes + plain

    def test_mode_bits_increase_control_memory(self):
        """§3: more flexibility costs control-memory bits."""
        assert CONFIG_D_MODED.route_bits > CONFIG_D.route_bits
        assert state_word_bits(CONFIG_D_MODED) > state_word_bits(CONFIG_D)

    def test_unknown_mode_rejected_at_config(self):
        from repro.core import CrossbarConfig
        with pytest.raises(RouteError):
            CrossbarConfig(name="x", in_ports=16, out_ports=16, port_bits=16,
                           modes=("sqrt",))


class TestRouteValidation:
    def test_mode_entry_accepted_on_moded_config(self):
        CONFIG_D_MODED.check_route(((0, "neg"), 1, None, (2, "sxb")))

    def test_mode_entry_rejected_on_base_config(self):
        with pytest.raises(RouteError):
            CONFIG_D.check_route(((0, "neg"), None, None, None))

    def test_unsupported_mode_rejected(self):
        with pytest.raises(RouteError):
            CONFIG_D_MODED.check_route(((0, "sqrt"), None, None, None))

    def test_mode_on_straight_granule_rejected(self):
        with pytest.raises(RouteError):
            CONFIG_D_MODED.check_route(((None, "neg"), None, None, None))

    def test_malformed_entry(self):
        with pytest.raises(RouteError):
            CONFIG_D_MODED.check_route(((0, "neg", 1), None, None, None))

    def test_split_entry(self):
        assert split_entry(None) == (None, None)
        assert split_entry(5) == (5, None)
        assert split_entry((5, "neg")) == (5, "neg")


class TestModeSemantics:
    def test_mode_functions(self):
        assert MODES["neg"](b"\x01\x00") == b"\xff\xff"  # -1
        assert MODES["neg"](b"\x00\x80") == b"\x00\x80"  # -(-32768) wraps
        assert MODES["sxb"](b"\x80\x7f") == b"\x80\xff"  # sign-extend low byte
        assert MODES["sxb"](b"\x7f\xff") == b"\x7f\x00"
        assert MODES["zxb"](b"\x80\x7f") == b"\x80\x00"

    def test_apply_negation(self):
        from repro.core import SPURegister
        reg = SPURegister()
        reg.write_reg(1, simd.join([100, -200, 300, -400], 16))
        route = ((4, "neg"), (5, "neg"), (6, "neg"), (7, "neg"))  # MM1 lanes
        out = CONFIG_D_MODED.apply(route, reg, 0)
        assert simd.split(out, 16, signed=True).tolist() == [-100, 200, -300, 400]

    def test_apply_sign_extension(self):
        from repro.core import SPURegister
        reg = SPURegister()
        reg.write_reg(0, simd.join([0x00FF, 0x007F, 0, 0], 16))
        route = ((0, "sxb"), (1, "sxb"), None, None)
        out = CONFIG_D_MODED.apply(route, reg, 0)
        lanes = simd.split(out, 16, signed=True)
        assert lanes[0] == -1 and lanes[1] == 0x7F

    def test_transparent_subtraction_via_negation(self):
        """paddsw with a negated route computes a saturating subtract."""
        src = f"""
            mov r3, {DEFAULT_MMIO_BASE}
            mov r4, 1
            stw [r3], r4
            paddsw mm0, mm1
            halt
        """
        machine = Machine(assemble(src))
        machine.state.write(MM[0], simd.join([10, 20, 30, 40], 16))
        machine.state.write(MM[1], simd.join([1, 2, 3, 4], 16))
        controller = SPUController(config=CONFIG_D_MODED)
        builder = SPUProgramBuilder(config=CONFIG_D_MODED)
        # route slot 1 = MM1's own lanes, negated
        builder.loop([{1: ((4, "neg"), (5, "neg"), (6, "neg"), (7, "neg"))}], 1)
        controller.load_program(builder.build())
        attach_spu(machine, controller)
        machine.run()
        assert simd.split(machine.state.mmx[0], 16).tolist() == [9, 18, 27, 36]


class TestModedEncoding:
    def test_roundtrip_with_modes(self):
        state = SPUState(
            cntr=1,
            routes={0: ((3, "neg"), None, (15, "zxb"), 7)},
            next0=127,
            next1=2,
        )
        word = encode_state(state, CONFIG_D_MODED)
        assert decode_state(word, CONFIG_D_MODED) == state

    def test_plain_entries_survive_moded_config(self):
        state = SPUState(routes={1: (1, 2, 3, 4)}, next0=0, next1=0)
        assert decode_state(encode_state(state, CONFIG_D_MODED), CONFIG_D_MODED) == state

    def test_base_config_encoding_unchanged(self):
        """Table 1's formula is untouched: base configs have no mode bits."""
        assert state_word_bits(CONFIG_D) == 15 + 2 * 4 * (1 + 4)
        assert CONFIG_D.route_bits == 64  # unchanged paper value

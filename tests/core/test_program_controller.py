"""Tests for SPU program structure, encoding, and the decoupled controller."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SPUProgramError
from repro.core import (
    CONFIG_A,
    CONFIG_C,
    CONFIG_D,
    SPUController,
    SPUProgram,
    SPUState,
    decode_state,
    encode_program,
    encode_state,
    state_word_bits,
)


def simple_loop_program(body_len=3, iterations=10, num_states=128):
    """States 0..body_len-1 chained cyclically, next0 = idle (Figure 7)."""
    program = SPUProgram(
        counter_init=(iterations * body_len, 0), num_states=num_states, name="loop"
    )
    idle = program.idle_state
    for index in range(body_len):
        program.add_state(
            index,
            SPUState(cntr=0, next0=idle, next1=(index + 1) % body_len),
        )
    return program


class TestSPUState:
    def test_bad_counter(self):
        with pytest.raises(SPUProgramError):
            SPUState(cntr=2)

    def test_bad_slot(self):
        with pytest.raises(SPUProgramError):
            SPUState(routes={3: (None,) * 4})

    def test_straight(self):
        assert SPUState().is_straight
        assert not SPUState(routes={0: (1, None, None, None)}).is_straight


class TestSPUProgram:
    def test_idle_state_index(self):
        assert SPUProgram().idle_state == 127
        assert SPUProgram(num_states=64).idle_state == 63

    def test_add_state_guards(self):
        program = SPUProgram()
        program.add_state(0, SPUState())
        with pytest.raises(SPUProgramError):
            program.add_state(0, SPUState())  # duplicate
        with pytest.raises(SPUProgramError):
            program.add_state(127, SPUState())  # idle reserved
        with pytest.raises(SPUProgramError):
            program.add_state(128, SPUState())  # out of range

    def test_validate_entry(self):
        program = SPUProgram(counter_init=(1, 0))
        with pytest.raises(SPUProgramError):
            program.validate()  # entry undefined

    def test_validate_next_targets(self):
        program = SPUProgram(counter_init=(1, 0))
        program.add_state(0, SPUState(next0=5, next1=127))
        with pytest.raises(SPUProgramError):
            program.validate()  # state 5 undefined

    def test_validate_counters(self):
        program = SPUProgram(counter_init=(0, 0))
        program.add_state(0, SPUState(next0=127, next1=127))
        with pytest.raises(SPUProgramError):
            program.validate()  # counter 0 used but zero-initialized

    def test_validate_routes_against_config(self):
        program = SPUProgram(counter_init=(1, 0))
        program.add_state(0, SPUState(routes={0: (20, None, None, None)}, next0=127, next1=127))
        program.validate(CONFIG_C)  # 20 < 32 input half-words: legal
        with pytest.raises(SPUProgramError):
            program.validate(CONFIG_D)  # 20 >= 16: out of window


class TestEncoding:
    def test_word_width(self):
        assert state_word_bits(CONFIG_D) == 15 + 2 * 4 * (1 + 4)
        assert state_word_bits(CONFIG_A) == 15 + 2 * 8 * (1 + 6)

    def test_roundtrip_straight(self):
        state = SPUState(cntr=1, next0=12, next1=99)
        word = encode_state(state, CONFIG_D)
        back = decode_state(word, CONFIG_D)
        assert back == state

    def test_roundtrip_routed(self):
        state = SPUState(
            cntr=0,
            routes={0: (3, None, 15, 0), 1: (7, 7, 7, 7)},
            next0=127,
            next1=1,
        )
        assert decode_state(encode_state(state, CONFIG_D), CONFIG_D) == state

    def test_roundtrip_byte_config(self):
        state = SPUState(routes={1: (63, 0, None, 5, 5, None, 17, 33)}, next0=0, next1=0)
        assert decode_state(encode_state(state, CONFIG_A), CONFIG_A) == state

    def test_encode_program(self):
        program = simple_loop_program()
        words = encode_program(program, CONFIG_D)
        assert set(words) == {0, 1, 2}

    @given(
        st.integers(0, 1),
        st.integers(0, 127),
        st.integers(0, 127),
        st.lists(st.one_of(st.none(), st.integers(0, 15)), min_size=4, max_size=4),
    )
    def test_roundtrip_property(self, cntr, next0, next1, route):
        routes = {0: tuple(route)} if any(r is not None for r in route) else {}
        state = SPUState(cntr=cntr, routes=routes, next0=next0, next1=next1)
        assert decode_state(encode_state(state, CONFIG_D), CONFIG_D) == state


class TestController:
    def test_initial_state_idle(self):
        ctl = SPUController()
        assert not ctl.active
        assert ctl.current_state == 127
        assert ctl.step() is None

    def test_go_requires_program(self):
        with pytest.raises(SPUProgramError):
            SPUController().go()

    def test_loop_runs_exact_dynamic_count(self):
        """§4 example: 3-state loop, 10 iterations, CNTR0 = 30 steps."""
        ctl = SPUController()
        ctl.load_program(simple_loop_program(body_len=3, iterations=10))
        ctl.go()
        steps = 0
        while ctl.active:
            assert ctl.step() is not None
            steps += 1
            assert steps < 100
        assert steps == 30
        assert ctl.current_state == 127

    def test_state_sequence_cycles(self):
        ctl = SPUController()
        ctl.load_program(simple_loop_program(body_len=3, iterations=2))
        ctl.go()
        seen = []
        while ctl.active:
            seen.append(ctl.current_state)
            ctl.step()
        assert seen == [0, 1, 2, 0, 1, 2]

    def test_counters_restore_after_idle(self):
        ctl = SPUController()
        ctl.load_program(simple_loop_program(body_len=2, iterations=3))
        ctl.go()
        while ctl.active:
            ctl.step()
        assert ctl.counters == (6, 0)  # restored to programmed value
        ctl.go()  # reusable without reprogramming
        assert ctl.active

    def test_stop_resets(self):
        ctl = SPUController()
        ctl.load_program(simple_loop_program())
        ctl.go()
        ctl.step()
        ctl.stop()
        assert not ctl.active and ctl.current_state == 127
        assert ctl.counters == (30, 0)

    def test_two_level_nesting_with_auto_reload(self):
        """Inner counter auto-reloads on exit, enabling 2-level nesting (§4)."""
        program = SPUProgram(counter_init=(4, 6), num_states=128, name="nested")
        idle = program.idle_state
        # inner: states 0,1 (CNTR0 = 2 iterations x 2 states = 4)
        program.add_state(0, SPUState(cntr=0, next0=2, next1=1))
        program.add_state(1, SPUState(cntr=0, next0=2, next1=0))
        # outer epilogue: states 2,3 (CNTR1 = 3 outer iterations x 2 states = 6)
        program.add_state(2, SPUState(cntr=1, next0=idle, next1=3))
        program.add_state(3, SPUState(cntr=1, next0=idle, next1=0))
        ctl = SPUController()
        ctl.load_program(program)
        ctl.go()
        trace = []
        while ctl.active:
            trace.append(ctl.current_state)
            ctl.step()
            assert len(trace) < 100
        assert trace == [0, 1, 0, 1, 2, 3] * 3

    def test_contexts(self):
        ctl = SPUController(contexts=2)
        ctl.load_program(simple_loop_program(body_len=1, iterations=1), context=0)
        ctl.load_program(simple_loop_program(body_len=2, iterations=1), context=1)
        ctl.go(context=1)
        assert ctl.context == 1
        ctl.step()
        assert ctl.current_state == 1
        ctl.stop()
        ctl.go(context=0)
        ctl.step()
        assert not ctl.active  # single-step program finished

    def test_context_switch_while_active_rejected(self):
        ctl = SPUController(contexts=2)
        ctl.load_program(simple_loop_program(), context=0)
        ctl.load_program(simple_loop_program(), context=1)
        ctl.go()
        with pytest.raises(SPUProgramError):
            ctl.switch_context(1)

    def test_context_bounds(self):
        ctl = SPUController(contexts=1)
        with pytest.raises(SPUProgramError):
            ctl.load_program(simple_loop_program(), context=1)

    def test_program_size_mismatch(self):
        ctl = SPUController(num_states=64)
        with pytest.raises(SPUProgramError):
            ctl.load_program(simple_loop_program(num_states=128))

    def test_stats(self):
        ctl = SPUController()
        ctl.load_program(simple_loop_program(body_len=3, iterations=2))
        ctl.go()
        while ctl.active:
            ctl.step()
        assert ctl.stats.steps == 6
        assert ctl.stats.activations == 1

    def test_peek_does_not_advance(self):
        ctl = SPUController()
        ctl.load_program(simple_loop_program())
        ctl.go()
        before = ctl.current_state
        ctl.peek()
        assert ctl.current_state == before

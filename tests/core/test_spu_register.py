"""Tests for the unified 512-bit SPU register."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SPUProgramError
from repro.core import SPU_REGISTER_BYTES, SPURegister, byte_address, halfword_address

WORDS = st.integers(min_value=0, max_value=2**64 - 1)


class TestLayout:
    def test_size(self):
        assert SPU_REGISTER_BYTES == 64
        assert len(SPURegister()) == 64

    def test_byte_address(self):
        assert byte_address(0, 0) == 0
        assert byte_address(1, 0) == 8
        assert byte_address(7, 7) == 63

    def test_byte_address_bounds(self):
        with pytest.raises(SPUProgramError):
            byte_address(8, 0)
        with pytest.raises(SPUProgramError):
            byte_address(0, 8)

    def test_halfword_address(self):
        assert halfword_address(0, 0) == 0
        assert halfword_address(1, 0) == 4
        assert halfword_address(7, 3) == 31

    def test_halfword_address_bounds(self):
        with pytest.raises(SPUProgramError):
            halfword_address(0, 4)


class TestAccess:
    def test_reg_roundtrip(self):
        reg = SPURegister()
        reg.write_reg(3, 0x1122334455667788)
        assert reg.read_reg(3) == 0x1122334455667788
        assert reg.read_reg(2) == 0

    def test_write_reg_is_partial(self):
        """Writes change only the targeted bytes (§3)."""
        reg = SPURegister()
        reg.write_reg(0, 0xAAAAAAAAAAAAAAAA)
        reg.write_reg(1, 0xBBBBBBBBBBBBBBBB)
        reg.write_reg(0, 0)
        assert reg.read_reg(1) == 0xBBBBBBBBBBBBBBBB

    def test_byte_view_little_endian(self):
        reg = SPURegister()
        reg.write_reg(2, 0x0807060504030201)
        assert [reg.read_byte(byte_address(2, j)) for j in range(8)] == list(range(1, 9))

    def test_write_byte(self):
        reg = SPURegister()
        reg.write_byte(17, 0xAB)
        assert reg.read_byte(17) == 0xAB
        assert reg.read_reg(2) == 0xAB << 8

    def test_read_all_snapshot(self):
        reg = SPURegister()
        snap = reg.read_all()
        reg.write_byte(0, 1)
        assert snap[0] == 0  # snapshot unaffected

    def test_load_from_mmx(self):
        reg = SPURegister()
        values = [i * 0x0101010101010101 for i in range(8)]
        reg.load_from_mmx(values)
        for i, value in enumerate(values):
            assert reg.read_reg(i) == value

    def test_load_from_mmx_wrong_count(self):
        with pytest.raises(SPUProgramError):
            SPURegister().load_from_mmx([0] * 7)

    def test_gather(self):
        reg = SPURegister()
        reg.write_reg(0, 0x0807060504030201)
        reg.write_reg(1, 0x1817161514131211)
        # interleave byte 0 of mm0/mm1, byte 1 of mm0/mm1, ...
        indices = [0, 8, 1, 9, 2, 10, 3, 11]
        assert reg.gather(indices) == 0x1404130312021101

    def test_gather_wrong_length(self):
        with pytest.raises(SPUProgramError):
            SPURegister().gather([0] * 7)

    def test_bounds(self):
        reg = SPURegister()
        with pytest.raises(SPUProgramError):
            reg.read_byte(64)
        with pytest.raises(SPUProgramError):
            reg.write_byte(-1, 0)
        with pytest.raises(SPUProgramError):
            reg.read_reg(8)

    @given(st.lists(WORDS, min_size=8, max_size=8))
    def test_mirror_matches_gather_identity(self, values):
        reg = SPURegister()
        reg.load_from_mmx(values)
        for index in range(8):
            identity = list(range(index * 8, index * 8 + 8))
            assert reg.gather(identity) == values[index]

"""Branch predictor unit tests."""

import pytest

from repro.errors import ConfigurationError
from repro.cpu import AlwaysTaken, Bimodal, GShare, StaticBTFN, make_predictor


class TestStatic:
    def test_always_taken(self):
        p = AlwaysTaken()
        assert p.predict(10, 2) and p.predict(2, 10)

    def test_btfn(self):
        p = StaticBTFN()
        assert p.predict(10, 2)  # backward → taken
        assert not p.predict(2, 10)  # forward → not taken
        assert p.predict(5, 5)  # self-loop counts as backward


class TestBimodal:
    def test_learns_taken(self):
        p = Bimodal(entries=16)
        for _ in range(3):
            p.update(4, 0, True)
        assert p.predict(4, 0)

    def test_learns_not_taken(self):
        p = Bimodal(entries=16)
        for _ in range(3):
            p.update(4, 0, False)
        assert not p.predict(4, 0)

    def test_hysteresis(self):
        p = Bimodal(entries=16)
        for _ in range(10):
            p.update(4, 0, True)
        p.update(4, 0, False)  # one anomaly
        assert p.predict(4, 0)  # still predicts taken

    def test_counter_saturation(self):
        p = Bimodal(entries=16)
        for _ in range(100):
            p.update(4, 0, True)
        # two not-taken flips the prediction (saturated at 3, not beyond)
        p.update(4, 0, False)
        p.update(4, 0, False)
        assert not p.predict(4, 0)

    def test_index_aliasing(self):
        p = Bimodal(entries=4)
        for _ in range(3):
            p.update(0, 0, False)
        assert not p.predict(4, 0)  # pc 4 aliases slot 0

    def test_reset(self):
        p = Bimodal(entries=16)
        for _ in range(4):
            p.update(1, 0, False)
        p.reset()
        assert p.predict(1, 0)  # back to weakly taken

    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            Bimodal(entries=3)
        with pytest.raises(ConfigurationError):
            Bimodal(entries=0)


class TestGShare:
    def test_history_distinguishes_paths(self):
        p = GShare(entries=64, history_bits=4)
        # Alternating pattern at one pc: bimodal would mispredict ~50%,
        # gshare learns it once history covers the period.
        mispredicts = 0
        taken = True
        for i in range(200):
            if p.predict(8, 0) != taken:
                mispredicts += 1
            p.update(8, 0, taken)
            taken = not taken
        assert mispredicts < 20  # learned the alternation

    def test_reset_clears_history(self):
        p = GShare(entries=64)
        for _ in range(10):
            p.update(1, 0, False)
        p.reset()
        assert p.predict(1, 0)

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            GShare(entries=100)
        with pytest.raises(ConfigurationError):
            GShare(history_bits=0)


class TestRegistry:
    def test_make_by_name(self):
        assert isinstance(make_predictor("bimodal"), Bimodal)
        assert isinstance(make_predictor("gshare", entries=64), GShare)
        assert isinstance(make_predictor("static-btfn"), StaticBTFN)
        assert isinstance(make_predictor("always-taken"), AlwaysTaken)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_predictor("oracle")

"""Property test: timed and functional execution agree on branchy programs.

The pipeline's branch handling (prediction, penalties, issue-group ends)
must never change *architectural* results — only cycle counts.  Random
programs with forward conditional branches and bounded counted loops are
run through both execution modes and compared register-for-register.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import Machine, PipelineConfig
from repro.isa import ProgramBuilder

MMX_REGS = [f"mm{i}" for i in range(6)]
SCALAR_REGS = [f"r{i}" for i in range(3, 10)]


@st.composite
def branchy_programs(draw):
    b = ProgramBuilder("branchy")
    b.mov("r1", 0x1000)
    block_count = draw(st.integers(1, 4))
    for block in range(block_count):
        # A counted loop with a small body.
        iterations = draw(st.integers(1, 5))
        b.mov("r0", iterations)
        b.label(f"loop{block}")
        for _ in range(draw(st.integers(1, 4))):
            choice = draw(st.integers(0, 3))
            if choice == 0:
                b.emit(draw(st.sampled_from(["paddw", "psubw", "pxor"])),
                       draw(st.sampled_from(MMX_REGS)),
                       draw(st.sampled_from(MMX_REGS)))
            elif choice == 1:
                b.emit("add", draw(st.sampled_from(SCALAR_REGS)),
                       draw(st.integers(-50, 50)))
            elif choice == 2:
                b.movq(draw(st.sampled_from(MMX_REGS)),
                       f"[r1+{draw(st.integers(0, 20)) * 8}]")
            else:
                b.emit("pmullw", draw(st.sampled_from(MMX_REGS)),
                       draw(st.sampled_from(MMX_REGS)))
        b.loop("r0", f"loop{block}")
        # A forward conditional skip over a couple of instructions.
        b.cmp(draw(st.sampled_from(SCALAR_REGS)), draw(st.integers(-10, 10)))
        b.emit(draw(st.sampled_from(["jz", "jnz", "jl", "jge"])), f"skip{block}")
        b.emit("xor", draw(st.sampled_from(SCALAR_REGS)),
               draw(st.integers(0, 255)))
        b.paddw(draw(st.sampled_from(MMX_REGS)), draw(st.sampled_from(MMX_REGS)))
        b.label(f"skip{block}")
        b.nop()
    b.halt()
    return b.build()


def seed_machine(machine):
    rng = np.random.default_rng(31)
    machine.memory.write_array(
        0x1000, rng.integers(-1000, 1000, size=128, dtype=np.int16), np.int16
    )
    for index in range(6):
        machine.state.mmx[index] = int(rng.integers(0, 2**63))
    for index in range(3, 10):
        machine.state.scalar[index] = int(rng.integers(0, 2**16))


class TestBranchyEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(branchy_programs())
    def test_state_agrees(self, program):
        timed = Machine(program)
        seed_machine(timed)
        timed.run()
        functional = Machine(program)
        seed_machine(functional)
        functional.run_functional()
        assert timed.state.mmx == functional.state.mmx
        assert timed.state.scalar == functional.state.scalar

    @settings(max_examples=25, deadline=None)
    @given(branchy_programs(), st.sampled_from(["always-taken", "static-btfn",
                                                "bimodal", "gshare"]))
    def test_predictor_never_changes_results(self, program, predictor):
        reference = Machine(program)
        seed_machine(reference)
        reference.run()
        other = Machine(program, predictor=predictor)
        seed_machine(other)
        other.run()
        assert other.state.mmx == reference.state.mmx
        assert other.state.scalar == reference.state.scalar

    @settings(max_examples=20, deadline=None)
    @given(branchy_programs())
    def test_branch_accounting(self, program):
        machine = Machine(program)
        seed_machine(machine)
        stats = machine.run()
        assert stats.mispredicts <= stats.branches
        assert stats.mispredict_cycles == (
            stats.mispredicts * machine.config.mispredict_penalty
        )

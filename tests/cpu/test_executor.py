"""Functional executor tests: one behaviour per instruction family."""

import numpy as np
import pytest

from repro import simd
from repro.errors import SimulationError
from repro.cpu import Machine, Memory, execute
from repro.cpu.state import MachineState
from repro.isa import MM, R, assemble


def run_asm(source, *, memory=None, setup=None):
    """Assemble and run functionally; returns the machine."""
    machine = Machine(assemble(source + "\nhalt"), memory=memory)
    if setup:
        setup(machine)
    machine.run_functional()
    return machine


class TestMMXArithmetic:
    def test_paddw(self):
        m = run_asm("paddw mm0, mm1", setup=lambda m: (
            m.state.write(MM[0], simd.join([1, 2, 3, 4], 16)),
            m.state.write(MM[1], simd.join([10, 20, 30, 40], 16)),
        ))
        assert simd.split(m.state.mmx[0], 16).tolist() == [11, 22, 33, 44]

    def test_paddsw_saturates(self):
        m = run_asm("paddsw mm0, mm1", setup=lambda m: (
            m.state.write(MM[0], simd.join([32767, 0, 0, 0], 16)),
            m.state.write(MM[1], simd.join([100, 0, 0, 0], 16)),
        ))
        assert simd.split(m.state.mmx[0], 16, signed=True)[0] == 32767

    def test_packed_with_memory_source(self):
        mem = Memory(256)
        mem.write_array(64, [5, 6, 7, 8], np.int16)
        m = run_asm("mov r1, 64\npaddw mm0, [r1]", memory=mem)
        assert simd.split(m.state.mmx[0], 16).tolist() == [5, 6, 7, 8]

    def test_pmaddwd(self):
        m = run_asm("pmaddwd mm0, mm1", setup=lambda m: (
            m.state.write(MM[0], simd.join([1, 2, 3, 4], 16)),
            m.state.write(MM[1], simd.join([5, 6, 7, 8], 16)),
        ))
        assert simd.split(m.state.mmx[0], 32, signed=True).tolist() == [17, 53]

    def test_pxor_clears(self):
        m = run_asm("pxor mm3, mm3", setup=lambda m: m.state.write(MM[3], 0xFFFF))
        assert m.state.mmx[3] == 0

    def test_pminmax(self):
        m = run_asm("pminsw mm0, mm1\npmaxsw mm2, mm1", setup=lambda m: (
            m.state.write(MM[0], simd.join([5, -5, 0, 9], 16)),
            m.state.write(MM[2], simd.join([5, -5, 0, 9], 16)),
            m.state.write(MM[1], simd.join([3, 3, 3, 3], 16)),
        ))
        assert simd.split(m.state.mmx[0], 16, signed=True).tolist() == [3, -5, 0, 3]
        assert simd.split(m.state.mmx[2], 16, signed=True).tolist() == [5, 3, 3, 9]


class TestMMXShiftsAndPermutes:
    def test_psllw_imm(self):
        m = run_asm("psllw mm0, 3", setup=lambda m:
                    m.state.write(MM[0], simd.join([1, 2, 3, 4], 16)))
        assert simd.split(m.state.mmx[0], 16).tolist() == [8, 16, 24, 32]

    def test_psrlq_register_count(self):
        m = run_asm("psrlq mm0, mm1", setup=lambda m: (
            m.state.write(MM[0], 0x100), m.state.write(MM[1], 4)))
        assert m.state.mmx[0] == 0x10

    def test_punpcklwd(self):
        m = run_asm("punpcklwd mm0, mm1", setup=lambda m: (
            m.state.write(MM[0], simd.join([0, 1, 2, 3], 16)),
            m.state.write(MM[1], simd.join([4, 5, 6, 7], 16)),
        ))
        assert simd.split(m.state.mmx[0], 16).tolist() == [0, 4, 1, 5]

    def test_pshufw_reverse(self):
        # order 0b00011011 = lanes 3,2,1,0
        m = run_asm("pshufw mm0, mm1, 0x1B", setup=lambda m:
                    m.state.write(MM[1], simd.join([1, 2, 3, 4], 16)))
        assert simd.split(m.state.mmx[0], 16).tolist() == [4, 3, 2, 1]

    def test_packsswb(self):
        m = run_asm("packsswb mm0, mm1", setup=lambda m: (
            m.state.write(MM[0], simd.join([300, -300, 1, -1], 16)),
            m.state.write(MM[1], simd.join([0, 0, 0, 0], 16)),
        ))
        assert simd.split(m.state.mmx[0], 8, signed=True).tolist()[:4] == [127, -128, 1, -1]


class TestMoves:
    def test_movq_mem_roundtrip(self):
        mem = Memory(256)
        m = run_asm(
            "mov r1, 8\nmovq mm0, [r1]\nmovq [r1+8], mm0",
            memory=mem,
            setup=lambda m: m.memory.store(8, 8, 0xCAFEBABE12345678),
        )
        assert m.memory.load(16, 8) == 0xCAFEBABE12345678

    def test_movd_zero_extends(self):
        m = run_asm("mov r1, 0xFFFFFFFF\nmovd mm0, r1")
        assert m.state.mmx[0] == 0xFFFFFFFF

    def test_movd_to_scalar_truncates(self):
        m = run_asm("movd r1, mm0", setup=lambda m:
                    m.state.write(MM[0], 0x1122334455667788))
        assert m.state.scalar[1] == 0x55667788


class TestScalar:
    def test_mov_add_sub(self):
        m = run_asm("mov r0, 10\nadd r0, 5\nsub r0, 3")
        assert m.state.scalar[0] == 12

    def test_wraparound(self):
        m = run_asm("mov r0, 0xFFFFFFFF\nadd r0, 2")
        assert m.state.scalar[0] == 1

    def test_flags_zero_sign(self):
        m = run_asm("mov r0, 1\nsub r0, 1")
        assert m.state.flags.zero and not m.state.flags.sign
        m = run_asm("mov r0, 0\nsub r0, 1")
        assert not m.state.flags.zero and m.state.flags.sign

    def test_shifts(self):
        m = run_asm("mov r0, 0x80000000\nsar r0, 4\nmov r1, 0x80000000\nshr r1, 4\nmov r2, 3\nshl r2, 2")
        assert m.state.scalar[0] == 0xF8000000
        assert m.state.scalar[1] == 0x08000000
        assert m.state.scalar[2] == 12

    def test_cmp_does_not_write(self):
        m = run_asm("mov r0, 5\ncmp r0, 9")
        assert m.state.scalar[0] == 5 and m.state.flags.sign

    def test_inc_dec_neg(self):
        m = run_asm("mov r0, 5\ndec r0\ninc r0\nneg r0")
        assert m.state.scalar[0] == (-5) & 0xFFFFFFFF

    def test_lea(self):
        m = run_asm("mov r1, 100\nmov r2, 3\nlea r0, [r1+r2*4+2]")
        assert m.state.scalar[0] == 114


class TestLoadsStores:
    def test_ldh_zero_vs_sign(self):
        mem = Memory(64)
        mem.store(0, 2, 0xFFFF)
        m = run_asm("mov r1, 0\nldh r2, [r1]\nldhs r3, [r1]", memory=mem)
        assert m.state.scalar[2] == 0xFFFF
        assert m.state.scalar[3] == 0xFFFFFFFF

    def test_stb_sth_stw(self):
        mem = Memory(64)
        m = run_asm(
            "mov r0, 0x11223344\nmov r1, 0\nstb [r1], r0\nsth [r1+8], r0\nstw [r1+16], r0",
            memory=mem,
        )
        assert m.memory.load(0, 1) == 0x44
        assert m.memory.load(8, 2) == 0x3344
        assert m.memory.load(16, 4) == 0x11223344


class TestControlFlow:
    def test_jmp_and_conditions(self):
        m = run_asm("""
            mov r0, 0
            cmp r0, 0
            jz is_zero
            mov r1, 111
            jmp done
        is_zero:
            mov r1, 222
        done:
            nop
        """)
        assert m.state.scalar[1] == 222

    def test_signed_conditions(self):
        m = run_asm("""
            mov r0, 3
            cmp r0, 5
            jl less
            mov r1, 1
            jmp done
        less:
            mov r1, 2
        done:
            nop
        """)
        assert m.state.scalar[1] == 2

    def test_loop_executes_n_times(self):
        m = run_asm("""
            mov r0, 5
            mov r1, 0
        top:
            add r1, 2
            loop r0, top
        """)
        assert m.state.scalar[1] == 10
        assert m.state.scalar[0] == 0

    def test_fall_off_end_raises(self):
        machine = Machine(assemble("nop"))
        with pytest.raises(SimulationError):
            machine.run_functional()

    def test_instruction_budget(self):
        machine = Machine(assemble("top: jmp top\nhalt"))
        with pytest.raises(SimulationError):
            machine.run_functional(max_instructions=100)

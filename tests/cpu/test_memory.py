"""Tests for the flat memory model and MMIO windows."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MemoryFault
from repro.cpu import Memory


class TestTypedAccess:
    def test_roundtrip_sizes(self):
        mem = Memory(1024)
        for size, value in ((1, 0xAB), (2, 0xBEEF), (4, 0xDEADBEEF), (8, 0x0123456789ABCDEF)):
            mem.store(100, size, value)
            assert mem.load(100, size) == value

    def test_little_endian(self):
        mem = Memory(64)
        mem.store(0, 4, 0x04030201)
        assert [mem.load(i, 1) for i in range(4)] == [1, 2, 3, 4]

    def test_store_truncates(self):
        mem = Memory(64)
        mem.store(0, 2, 0x123456)
        assert mem.load(0, 2) == 0x3456

    def test_load_signed(self):
        mem = Memory(64)
        mem.store(0, 2, 0xFFFF)
        assert mem.load_signed(0, 2) == -1
        mem.store(0, 2, 0x7FFF)
        assert mem.load_signed(0, 2) == 0x7FFF

    def test_out_of_range_load(self):
        mem = Memory(16)
        with pytest.raises(MemoryFault):
            mem.load(16, 1)
        with pytest.raises(MemoryFault):
            mem.load(12, 8)
        with pytest.raises(MemoryFault):
            mem.load(-1, 1)

    def test_out_of_range_store(self):
        mem = Memory(16)
        with pytest.raises(MemoryFault):
            mem.store(15, 2, 0)

    def test_bad_size_rejected(self):
        with pytest.raises(MemoryFault):
            Memory(0)

    @given(st.integers(0, 2**64 - 1), st.integers(0, 56))
    def test_store_load_property(self, value, address):
        mem = Memory(64)
        mem.store(address, 8, value)
        assert mem.load(address, 8) == value


class TestBulkHelpers:
    def test_write_read_array(self):
        mem = Memory(1024)
        data = np.array([1, -2, 3, -4], dtype=np.int16)
        written = mem.write_array(32, data, np.int16)
        assert written == 8
        assert mem.read_array(32, 4, np.int16).tolist() == [1, -2, 3, -4]

    def test_read_array_is_copy(self):
        mem = Memory(64)
        mem.write_array(0, [5], np.int32)
        out = mem.read_array(0, 1, np.int32)
        out[0] = 9
        assert mem.load(0, 4) == 5

    def test_fill(self):
        mem = Memory(64)
        mem.fill(8, 4, 0xEE)
        assert mem.load(8, 4) == 0xEEEEEEEE
        assert mem.load(12, 1) == 0

    def test_array_bounds_checked(self):
        mem = Memory(16)
        with pytest.raises(MemoryFault):
            mem.write_array(12, [1, 2], np.int32)


class FakeDevice:
    def __init__(self):
        self.regs = {}

    def mmio_load(self, offset, size):
        return self.regs.get(offset, 0)

    def mmio_store(self, offset, size, value):
        self.regs[offset] = value


class TestMMIO:
    def test_window_dispatch(self):
        mem = Memory(256)
        dev = FakeDevice()
        mem.map_device(0x80, 32, dev)
        mem.store(0x84, 4, 1234)
        assert dev.regs[4] == 1234
        assert mem.load(0x84, 4) == 1234

    def test_window_may_exceed_physical_memory(self):
        mem = Memory(16)
        dev = FakeDevice()
        mem.map_device(0x100000, 64, dev)
        mem.store(0x100008, 8, 7)
        assert mem.load(0x100008, 8) == 7

    def test_overlapping_windows_rejected(self):
        mem = Memory(256)
        mem.map_device(0x80, 32, FakeDevice())
        with pytest.raises(MemoryFault):
            mem.map_device(0x9F, 8, FakeDevice())

    def test_adjacent_windows_allowed(self):
        mem = Memory(256)
        mem.map_device(0x80, 32, FakeDevice())
        mem.map_device(0xA0, 32, FakeDevice())  # no overlap

    def test_normal_memory_unaffected(self):
        mem = Memory(256)
        mem.map_device(0x80, 32, FakeDevice())
        mem.store(0x40, 4, 99)
        assert mem.load(0x40, 4) == 99

"""Every opcode in the table must execute: no dead table entries, no
missing executor dispatch, and sane pairing metadata for each."""

import pytest

from repro.cpu import Machine, Memory
from repro.isa import Imm, Instruction, Label, Mem, Program, all_opcodes, lookup
from repro.isa.operands import Operand
from repro.isa.registers import MM, R


def minimal_operands(opcode) -> tuple[Operand, ...]:
    """A valid operand tuple for *opcode* (registers/imm/mem defaults)."""
    operands: list[Operand] = []
    for index, slot in enumerate(opcode.signature):
        kinds = slot.split("|")
        if opcode.sem in ("movq", "movd") and index == 0:
            operands.append(MM[0])
        elif "mm" in kinds:
            operands.append(MM[index])
        elif "r" in kinds:
            operands.append(R[index])
        elif "mem" in kinds:
            operands.append(Mem(base=R[10]))
        elif "imm" in kinds:
            operands.append(Imm(1))
        elif "label" in kinds:
            operands.append(Label("end"))
        else:  # pragma: no cover
            raise AssertionError(f"unhandled slot {slot}")
    return tuple(operands)


@pytest.mark.parametrize("opcode", all_opcodes(), ids=lambda op: op.name)
def test_opcode_executes(opcode):
    instr = Instruction(opcode=opcode, operands=minimal_operands(opcode))
    program = Program(instructions=[instr], labels={"end": 1}, name="cov")
    program.instructions.append(Instruction(opcode=lookup("halt")))
    machine = Machine(program, memory=Memory(1 << 16))
    machine.state.write(R[10], 0x100)  # valid memory base
    machine.state.write(R[0], 2)  # loop counters terminate
    stats = machine.run(max_cycles=100)
    assert stats.finished
    assert stats.instructions >= 1


def test_every_opcode_has_minimal_form():
    # The parametrized test above covers the whole table; assert its size
    # here so silent table shrinkage fails loudly.
    assert len(all_opcodes()) >= 80

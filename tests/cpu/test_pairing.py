"""Tests for the published U/V pairing rules (§2)."""

import pytest

from repro.cpu import can_pair
from repro.isa import assemble


def pair(text_u, text_v):
    program = assemble(f"{text_u}\n{text_v}\nx: halt\n")
    return can_pair(program[0], program[1])


class TestResourceRules:
    def test_two_alu_pair(self):
        ok, _ = pair("paddw mm0, mm1", "psubw mm2, mm3")
        assert ok

    def test_two_multiplies_conflict(self):
        ok, reason = pair("pmullw mm0, mm1", "pmaddwd mm2, mm3")
        assert not ok and "multiply" in reason

    def test_multiply_plus_alu_pair(self):
        ok, _ = pair("pmullw mm0, mm1", "paddw mm2, mm3")
        assert ok

    def test_two_shift_pack_conflict(self):
        ok, reason = pair("punpcklwd mm0, mm1", "psllw mm2, 2")
        assert not ok and "shift/pack" in reason

    def test_shift_plus_mul_pair(self):
        ok, _ = pair("punpcklwd mm0, mm1", "pmullw mm2, mm3")
        assert ok

    def test_memory_in_v_slot_rejected(self):
        ok, reason = pair("paddw mm0, mm1", "movq mm2, [r1]")
        assert not ok and "U pipe" in reason

    def test_memory_in_u_slot_fine(self):
        ok, _ = pair("movq mm2, [r1]", "paddw mm0, mm1")
        assert ok

    def test_scalar_load_v_rejected(self):
        ok, _ = pair("add r0, 1", "ldw r2, [r3]")
        assert not ok


class TestDependenceRules:
    def test_same_destination_rejected(self):
        ok, reason = pair("paddw mm0, mm1", "psubw mm0, mm2")
        assert not ok and "destination" in reason

    def test_raw_rejected(self):
        ok, reason = pair("paddw mm0, mm1", "psubw mm2, mm0")
        assert not ok and "read-after-write" in reason

    def test_war_rejected(self):
        ok, reason = pair("paddw mm0, mm1", "movq mm1, mm2")
        assert not ok and "write-after-read" in reason

    def test_independent_scalar_mmx_pair(self):
        ok, _ = pair("paddw mm0, mm1", "add r0, 8")
        assert ok

    def test_flags_exempt_cmp_branch(self):
        """cmp+jcc pairs on the real Pentium; flags are hazard-exempt."""
        ok, _ = pair("cmp r0, 5", "jnz x")
        assert ok

    def test_flags_exempt_two_writers(self):
        ok, _ = pair("add r0, 1", "sub r1, 2")
        assert ok

    def test_address_war(self):
        # V writes r1 which U's address uses
        ok, reason = pair("movq mm0, [r1]", "add r1, 8")
        assert not ok and "write-after-read" in reason


class TestControlRules:
    def test_branch_ends_group(self):
        ok, reason = pair("jmp x", "paddw mm0, mm1")
        assert not ok and "branch" in reason

    def test_branch_pairs_second(self):
        ok, _ = pair("paddw mm0, mm1", "jnz x")
        assert ok

    def test_loop_pairs_second_when_independent(self):
        ok, _ = pair("paddw mm0, mm1", "loop r0, x")
        assert ok

    def test_loop_raw_on_counter(self):
        ok, _ = pair("add r0, 1", "loop r0, x")
        assert not ok

    def test_halt_solo(self):
        ok, _ = pair("nop", "halt")
        assert not ok

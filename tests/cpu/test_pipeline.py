"""Cycle-model tests: issue pairing, latency stalls, branch penalties."""

import pytest

from repro import simd
from repro.errors import SimulationError
from repro.cpu import Bimodal, Machine, PipelineConfig, StaticBTFN
from repro.isa import MM, assemble


def cycles_of(source, **kwargs):
    machine = Machine(assemble(source), **kwargs)
    stats = machine.run()
    return stats, machine


class TestIssuePairing:
    def test_independent_pair_one_cycle(self):
        stats, _ = cycles_of("paddw mm0, mm1\npsubw mm2, mm3\nhalt")
        assert stats.pair_cycles == 1
        assert stats.cycles == 2  # pair + halt

    def test_dependent_serializes(self):
        stats, _ = cycles_of("paddw mm0, mm1\npsubw mm2, mm0\nhalt")
        assert stats.pair_cycles == 0
        assert stats.cycles == 3

    def test_issue_width_one_disables_pairing(self):
        wide, _ = cycles_of("paddw mm0, mm1\npsubw mm2, mm3\nhalt")
        narrow, _ = cycles_of(
            "paddw mm0, mm1\npsubw mm2, mm3\nhalt",
            config=PipelineConfig(issue_width=1),
        )
        assert narrow.cycles == wide.cycles + 1
        assert narrow.pair_cycles == 0

    def test_pair_fail_reasons_recorded(self):
        stats, _ = cycles_of("pmullw mm0, mm1\npmaddwd mm2, mm3\nhalt")
        assert stats.pair_fail_reasons["only one multiply per cycle"] == 1


class TestLatency:
    def test_multiply_latency_stalls_consumer(self):
        # pmullw at cycle 0 → mm0 ready at cycle 3; dependent paddw stalls.
        stats, _ = cycles_of("pmullw mm0, mm1\npaddw mm2, mm0\nhalt")
        assert stats.stall_cycles == 2

    def test_independent_instruction_hides_latency(self):
        stats, _ = cycles_of(
            "pmullw mm0, mm1\n" + "paddw mm2, mm3\n" * 4 + "paddw mm4, mm0\nhalt"
        )
        assert stats.stall_cycles == 0

    def test_single_cycle_back_to_back(self):
        stats, _ = cycles_of("paddw mm0, mm1\npaddw mm2, mm0\npaddw mm3, mm2\nhalt")
        assert stats.stall_cycles == 0


class TestBranches:
    def test_loop_branch_counts(self):
        stats, _ = cycles_of("mov r0, 10\ntop: nop\nloop r0, top\nhalt")
        assert stats.branches == 10

    def test_bimodal_mispredicts_only_exit(self):
        # Warm 2-bit counters mispredict only the final not-taken iteration.
        stats, _ = cycles_of(
            "mov r0, 100\ntop: nop\nloop r0, top\nhalt", predictor=Bimodal()
        )
        assert stats.mispredicts == 1
        assert stats.mispredict_rate < 0.02

    def test_btfn_backward_loop(self):
        stats, _ = cycles_of(
            "mov r0, 50\ntop: nop\nloop r0, top\nhalt", predictor=StaticBTFN()
        )
        assert stats.mispredicts == 1  # only the fall-through exit

    def test_mispredict_penalty_applied(self):
        base, _ = cycles_of(
            "mov r0, 2\ntop: nop\nloop r0, top\nhalt",
            config=PipelineConfig(mispredict_penalty=0),
        )
        slow, _ = cycles_of(
            "mov r0, 2\ntop: nop\nloop r0, top\nhalt",
            config=PipelineConfig(mispredict_penalty=10),
        )
        assert slow.cycles > base.cycles
        assert (slow.cycles - base.cycles) % 10 == 0

    def test_jmp_never_mispredicts(self):
        stats, _ = cycles_of("jmp skip\nskip: halt")
        assert stats.branches == 1 and stats.mispredicts == 0


class TestExtraStage:
    def test_extra_stage_adds_fill_cycle(self):
        base, _ = cycles_of("nop\nhalt")
        extra, _ = cycles_of("nop\nhalt", config=PipelineConfig(extra_stage=True))
        assert extra.cycles == base.cycles + 1

    def test_extra_stage_increases_mispredict_penalty(self):
        src = "mov r0, 2\ntop: nop\nloop r0, top\nhalt"
        base, _ = cycles_of(src, config=PipelineConfig(mispredict_penalty=4))
        extra, _ = cycles_of(
            src, config=PipelineConfig(mispredict_penalty=4, extra_stage=True)
        )
        # +1 fill cycle, +1 per mispredict
        assert extra.cycles == base.cycles + 1 + base.mispredicts


class TestAccounting:
    def test_mmx_busy_fraction(self):
        stats, _ = cycles_of("paddw mm0, mm1\npaddw mm2, mm3\nmov r0, 1\nmov r1, 2\nhalt")
        assert 0 < stats.mmx_busy_cycles < stats.cycles

    def test_permute_counting(self):
        stats, _ = cycles_of("punpcklwd mm0, mm1\npackuswb mm2, mm3\npaddw mm4, mm5\nhalt")
        assert stats.permutes == 2
        assert stats.alignment_candidates == 2

    def test_alignment_candidates_include_movq(self):
        stats, _ = cycles_of("movq mm0, mm1\npsrlq mm2, 16\nhalt")
        assert stats.permutes == 0
        assert stats.alignment_candidates == 2

    def test_cycle_budget_guard(self):
        machine = Machine(assemble("top: jmp top\nhalt"))
        with pytest.raises(SimulationError):
            machine.run(max_cycles=1000)

    def test_stats_as_dict(self):
        stats, _ = cycles_of("nop\nhalt")
        d = stats.as_dict()
        assert d["finished"] and d["cycles"] >= 2 and "by_class" in d

    def test_timing_matches_functional_result(self):
        src = """
            mov r0, 8
            pxor mm2, mm2
        top:
            paddw mm2, mm1
            loop r0, top
            halt
        """
        timed = Machine(assemble(src))
        timed.state.write(MM[1], simd.join([1, 1, 1, 1], 16))
        timed.run()
        func = Machine(assemble(src))
        func.state.write(MM[1], simd.join([1, 1, 1, 1], 16))
        func.run_functional()
        assert timed.state.mmx[2] == func.state.mmx[2] == simd.join([8] * 4, 16)

    def test_reset(self):
        stats, machine = cycles_of("mov r0, 7\nhalt")
        assert machine.state.scalar[0] == 7
        machine.reset()
        assert machine.state.scalar[0] == 0 and not machine.state.halted

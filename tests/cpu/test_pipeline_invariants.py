"""Property tests: pipeline accounting invariants on random programs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import Machine, PipelineConfig
from repro.isa import ProgramBuilder, assemble

MMX_REGS = st.sampled_from([f"mm{i}" for i in range(8)])
# r1 is the memory base pointer — keep random scalar ops off it.
SCALAR_REGS = st.sampled_from([f"r{i}" for i in range(2, 12)])


@st.composite
def linear_programs(draw):
    """Random straight-line programs ending in halt (branch-free)."""
    b = ProgramBuilder("fuzz")
    b.mov("r1", 0x1000)
    for _ in range(draw(st.integers(1, 30))):
        choice = draw(st.integers(0, 5))
        if choice == 0:
            b.emit(draw(st.sampled_from(["paddw", "psubb", "pxor", "pand"])),
                   draw(MMX_REGS), draw(MMX_REGS))
        elif choice == 1:
            b.emit(draw(st.sampled_from(["pmullw", "pmaddwd"])),
                   draw(MMX_REGS), draw(MMX_REGS))
        elif choice == 2:
            if draw(st.booleans()):
                b.emit(draw(st.sampled_from(["punpcklwd", "packsswb"])),
                       draw(MMX_REGS), draw(MMX_REGS))
            else:
                b.emit("psllw", draw(MMX_REGS), draw(st.integers(0, 15)))
        elif choice == 3:
            b.emit(draw(st.sampled_from(["add", "sub", "xor"])),
                   draw(SCALAR_REGS), draw(st.integers(-100, 100)))
        elif choice == 4:
            b.movq(draw(MMX_REGS), f"[r1+{draw(st.integers(0, 30)) * 8}]")
        else:
            b.movq(f"[r1+{draw(st.integers(0, 30)) * 8}]", draw(MMX_REGS))
    b.halt()
    return b.build()


class TestAccountingInvariants:
    @settings(max_examples=50, deadline=None)
    @given(linear_programs())
    def test_cycle_decomposition_exact(self, program):
        """cycles = issue groups + stalls + mispredict penalties (+ fill)."""
        stats = Machine(program).run()
        assert stats.cycles == (
            stats.pair_cycles + stats.solo_cycles + stats.stall_cycles
            + stats.mispredict_cycles
        )

    @settings(max_examples=50, deadline=None)
    @given(linear_programs())
    def test_instruction_conservation(self, program):
        stats = Machine(program).run()
        assert stats.instructions == 2 * stats.pair_cycles + stats.solo_cycles
        assert stats.instructions == len(program)  # straight line, no branches

    @settings(max_examples=50, deadline=None)
    @given(linear_programs())
    def test_dual_issue_bounds(self, program):
        stats = Machine(program).run()
        # At best two per cycle; at worst fully serialized plus stalls.
        assert stats.cycles >= stats.instructions / 2
        assert stats.pair_cycles <= stats.instructions // 2

    @settings(max_examples=30, deadline=None)
    @given(linear_programs())
    def test_single_issue_never_faster(self, program):
        wide = Machine(program).run()
        narrow = Machine(program, config=PipelineConfig(issue_width=1)).run()
        assert narrow.cycles >= wide.cycles
        assert narrow.pair_cycles == 0

    @settings(max_examples=30, deadline=None)
    @given(linear_programs())
    def test_extra_stage_costs_exactly_fill_plus_mispredicts(self, program):
        base = Machine(program).run()
        extra = Machine(program, config=PipelineConfig(extra_stage=True)).run()
        assert extra.cycles == base.cycles + 1 + base.mispredicts

    @settings(max_examples=30, deadline=None)
    @given(linear_programs())
    def test_functional_and_timed_agree_on_state(self, program):
        timed = Machine(program)
        timed.run()
        functional = Machine(program)
        functional.run_functional()
        assert timed.state.mmx == functional.state.mmx
        assert timed.state.scalar == functional.state.scalar

    @settings(max_examples=30, deadline=None)
    @given(linear_programs())
    def test_memory_latency_monotone(self, program):
        fast = Machine(program, config=PipelineConfig(memory_latency=1)).run()
        slow = Machine(program, config=PipelineConfig(memory_latency=6)).run()
        assert slow.cycles >= fast.cycles


class TestStepFunctional:
    def test_steps_match_run(self):
        source = "mov r0, 3\ntop: paddw mm0, mm1\nloop r0, top\nhalt"
        stepper = Machine(assemble(source))
        names = []
        while (instr := stepper.step_functional()) is not None:
            names.append(instr.name)
        assert names.count("paddw") == 3
        assert names[-1] == "halt"
        runner = Machine(assemble(source))
        runner.run_functional()
        assert stepper.state.mmx == runner.state.mmx

    def test_step_after_halt_returns_none(self):
        machine = Machine(assemble("halt"))
        assert machine.step_functional().name == "halt"
        assert machine.step_functional() is None

    def test_step_routes_through_spu(self):
        from repro import simd
        from repro.core import (
            CONFIG_D, SPUController, SPUProgramBuilder, attach_spu, halfword_route,
        )
        machine = Machine(assemble("paddw mm0, mm1\nhalt"))
        machine.state.write(__import__("repro.isa", fromlist=["MM"]).MM[2],
                            simd.join([7, 7, 7, 7], 16))
        ctl = SPUController(config=CONFIG_D)
        builder = SPUProgramBuilder(config=CONFIG_D)
        builder.loop([{1: halfword_route([(2, 0), (2, 1), (2, 2), (2, 3)])}], 1)
        ctl.load_program(builder.build())
        attach_spu(machine, ctl)
        ctl.go()
        machine.step_functional()
        assert simd.split(machine.state.mmx[0], 16).tolist() == [7, 7, 7, 7]

"""Failure posture of the machine layer: watchdog, modes, memory faults."""

import pytest

from repro.cpu import Machine, Memory, PipelineConfig
from repro.errors import MemoryFault, SimulationError
from repro.isa import assemble
from repro.resilience import ResilienceMode


def machine_of(source, **kwargs):
    return Machine(assemble(source), **kwargs)


INFINITE = "top: jmp top\nhalt"

#: movq from r0 (address loaded at runtime) then a countable epilogue.
LOAD_AT = "mov r0, {address}\nmovq mm0, [r0]\npaddw mm1, mm2\nhalt"
STORE_AT = "mov r0, {address}\nmovq [r0], mm0\npaddw mm1, mm2\nhalt"


class TestResilienceMode:
    def test_parse_accepts_strings_and_none(self):
        assert ResilienceMode.parse(None) is ResilienceMode.STRICT
        assert ResilienceMode.parse("degrade") is ResilienceMode.DEGRADE
        assert ResilienceMode.parse("HALT") is ResilienceMode.HALT
        assert ResilienceMode.parse(ResilienceMode.STRICT) is ResilienceMode.STRICT

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="strict"):
            ResilienceMode.parse("lenient")


class TestWatchdog:
    def test_default_watchdog_is_armed(self):
        """Runaway protection is on by default, not opt-in."""
        assert PipelineConfig().max_cycles == 200_000_000
        assert machine_of(INFINITE).config.max_cycles == 200_000_000

    def test_infinite_loop_raises_simulation_error(self):
        machine = machine_of(INFINITE)
        with pytest.raises(SimulationError, match="cycle budget"):
            machine.run(max_cycles=500)

    def test_watchdog_error_carries_partial_stats(self):
        machine = machine_of(INFINITE)
        with pytest.raises(SimulationError) as excinfo:
            machine.run(max_cycles=500)
        stats = excinfo.value.stats
        assert stats.finished is False
        assert stats.cycles >= 500
        assert stats.instructions > 0

    def test_watchdog_emits_fault_and_run_end(self):
        machine = machine_of(INFINITE)
        faults, ends = [], []
        machine.bus.subscribe("fault", faults.append)
        machine.bus.subscribe("run_end", ends.append)
        with pytest.raises(SimulationError):
            machine.run(max_cycles=200)
        assert [event.kind for event in faults] == ["watchdog"]
        assert len(ends) == 1 and ends[0].finished is False

    def test_config_override_still_works(self):
        machine = machine_of(
            INFINITE, config=PipelineConfig(max_cycles=300)
        )
        with pytest.raises(SimulationError, match="cycle budget"):
            machine.run()


class TestMemoryFaultStrict:
    def test_misaligned_packed_load_reports_address_and_size(self):
        source = LOAD_AT.format(address=0x1003)
        machine = machine_of(source, memory=Memory(require_alignment=True))
        with pytest.raises(MemoryFault, match="misaligned") as excinfo:
            machine.run()
        assert excinfo.value.address == 0x1003
        assert excinfo.value.size == 8

    def test_misaligned_packed_store_reports_address_and_size(self):
        source = STORE_AT.format(address=0x2006)
        machine = machine_of(source, memory=Memory(require_alignment=True))
        with pytest.raises(MemoryFault, match="misaligned") as excinfo:
            machine.run()
        assert excinfo.value.address == 0x2006
        assert excinfo.value.size == 8

    def test_aligned_access_passes_with_alignment_required(self):
        source = LOAD_AT.format(address=0x1008)
        machine = machine_of(source, memory=Memory(require_alignment=True))
        assert machine.run().finished

    def test_out_of_range_load_reports_address_and_size(self):
        address = (1 << 20) - 4  # last 8-byte load straddles the end
        machine = machine_of(LOAD_AT.format(address=address))
        with pytest.raises(MemoryFault, match="out of range") as excinfo:
            machine.run()
        assert excinfo.value.address == address
        assert excinfo.value.size == 8

    def test_strict_is_the_default_mode(self):
        machine = machine_of("halt")
        assert machine.resilience is ResilienceMode.STRICT


class TestMemoryFaultDegrade:
    def run_degraded(self, source, **kwargs):
        machine = machine_of(source, resilience="degrade", **kwargs)
        faults, degrades = [], []
        machine.bus.subscribe("fault", faults.append)
        machine.bus.subscribe("degrade", degrades.append)
        stats = machine.run()
        return machine, stats, faults, degrades

    def test_faulting_issue_degrades_to_noop(self):
        source = LOAD_AT.format(address=0x1003)
        machine, stats, faults, degrades = self.run_degraded(
            source, memory=Memory(require_alignment=True)
        )
        assert stats.finished
        assert stats.faults == 1
        assert stats.degraded_issues == 1
        assert [event.action for event in degrades] == ["drop_instruction"]

    def test_fault_event_carries_the_memory_fault(self):
        source = STORE_AT.format(address=0x2006)
        machine, stats, faults, _ = self.run_degraded(
            source, memory=Memory(require_alignment=True)
        )
        assert len(faults) == 1
        error = faults[0].error
        assert isinstance(error, MemoryFault)
        assert error.address == 0x2006
        assert error.size == 8
        assert faults[0].kind == "MemoryFault"

    def test_out_of_range_load_degrades(self):
        address = (1 << 20) - 4
        machine, stats, faults, _ = self.run_degraded(LOAD_AT.format(address=address))
        assert stats.finished
        assert faults[0].error.address == address
        assert faults[0].error.size == 8

    def test_attribution_invariant_survives_degraded_issues(self):
        source = LOAD_AT.format(address=0x1003)
        _, stats, _, _ = self.run_degraded(
            source, memory=Memory(require_alignment=True)
        )
        assert sum(stats.attribution().values()) == stats.cycles

    def test_stats_dict_exposes_fault_counters(self):
        _, stats, _, _ = self.run_degraded(
            LOAD_AT.format(address=0x1003), memory=Memory(require_alignment=True)
        )
        as_dict = stats.as_dict()
        assert as_dict["faults"] == 1
        assert as_dict["degraded_issues"] == 1


class TestHaltMode:
    def test_halt_fail_stops_cleanly(self):
        source = LOAD_AT.format(address=0x1003)
        machine = machine_of(
            source, memory=Memory(require_alignment=True), resilience="halt"
        )
        ends = []
        machine.bus.subscribe("run_end", ends.append)
        stats = machine.run()  # no exception: a clean fail-stop
        assert stats.finished is False
        assert stats.faults == 1
        assert stats.degraded_issues == 0
        assert len(ends) == 1 and ends[0].finished is False

    def test_clean_program_unaffected_by_halt_mode(self):
        machine = machine_of("paddw mm0, mm1\nhalt", resilience="halt")
        stats = machine.run()
        assert stats.finished
        assert stats.faults == 0

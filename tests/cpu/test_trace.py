"""Tests for the execution tracer and the SPU microcode renderer."""

from repro.cpu import Machine, trace_run
from repro.core import (
    CONFIG_D,
    SPUController,
    SPUProgramBuilder,
    attach_spu,
    render_program,
    render_state,
    SPUState,
    halfword_route,
)
from repro.isa import assemble
from repro.kernels import DotProductKernel


class TestTrace:
    def test_records_every_issue(self):
        machine = Machine(assemble("mov r0, 3\ntop: nop\nloop r0, top\nhalt"))
        trace = trace_run(machine)
        assert len(trace) == trace.stats.instructions
        assert trace.entries[0].text == "mov r0, 3"
        assert trace.entries[-1].text == "halt"

    def test_pc_and_sequence(self):
        machine = Machine(assemble("nop\nnop\nhalt"))
        trace = trace_run(machine)
        assert [entry.pc for entry in trace] == [0, 1, 2]
        assert [entry.seq for entry in trace] == [0, 1, 2]

    def test_mmx_flag(self):
        machine = Machine(assemble("paddw mm0, mm1\nadd r0, 1\nhalt"))
        trace = trace_run(machine)
        assert trace.entries[0].is_mmx and not trace.entries[1].is_mmx

    def test_routed_flag_follows_spu(self):
        kernel = DotProductKernel(blocks=2)
        program, controller_programs = kernel.spu_programs()
        machine = kernel._machine(program, controller_programs)
        trace = trace_run(machine)
        routed = trace.routed_entries()
        assert routed, "SPU-routed instructions must appear in the trace"
        assert all(entry.is_mmx for entry in routed)
        assert len(routed) == trace.stats.spu_routed

    def test_render_and_limit(self):
        machine = Machine(assemble("nop\nnop\nnop\nhalt"))
        trace = trace_run(machine)
        text = trace.render(limit=2)
        assert "2 more" in text
        assert "[" in trace.entries[0].render()

    def test_entry_cap(self):
        machine = Machine(assemble("mov r0, 50\ntop: nop\nloop r0, top\nhalt"))
        trace = trace_run(machine, max_entries=10)
        assert len(trace) == 10
        assert trace.stats.instructions > 10

    def test_subscription_released(self):
        machine = Machine(assemble("halt"))
        trace_run(machine)
        assert not machine.bus.has_subscribers("issue")


class TestMicrocodeRenderer:
    def test_render_state_straight(self):
        text = render_state(0, SPUState(cntr=1, next0=127, next1=3), idle=127)
        assert "CNTR1" in text and "straight" in text
        assert "next0=IDLE" in text and "next1=3" in text

    def test_render_state_routes_and_modes(self):
        from repro.core import CONFIG_D_MODED
        state = SPUState(routes={0: ((3, "neg"), None, 5, 1)}, next0=0, next1=0)
        text = render_state(2, state, idle=127)
        assert "3n" in text and "." in text and "5" in text

    def test_render_program(self):
        builder = SPUProgramBuilder(config=CONFIG_D)
        builder.loop([None, {1: halfword_route([(1, 0)] * 4)}], iterations=3)
        text = render_program(builder.build())
        assert "CNTR0=6" in text
        assert text.count("state") >= 2
        assert "op1=" in text

"""Decoded micro-op cache tests: identity, rebinding, and wrapper compat.

The hot-path engine resolves every static instruction once into a
:class:`~repro.cpu.executor.DecodedOp` stored per-Program
(:func:`~repro.cpu.executor.uop_table`).  These tests pin the cache
contracts the pipeline relies on: entries are revalidated by instruction
identity (the off-load pass reuses Instruction objects under different
label maps), packed-op handlers bind to the simd backend active at decode
time, and the classic :func:`~repro.cpu.executor.execute` wrapper still
behaves as the pre-cache single-step API.
"""

from repro import simd
from repro.cpu import Machine, execute
from repro.cpu.executor import DecodedOp, decode, uop_table
from repro.isa import MM, assemble

SOURCE = (
    "mov r0, 3\n"
    "top: paddw mm0, mm1\n"
    "loop r0, top\n"
    "halt"
)


class TestUopTable:
    def test_cache_is_per_program_and_reused(self):
        program = assemble(SOURCE)
        table = uop_table(program)
        assert table == {}
        assert uop_table(program) is table
        assert uop_table(assemble(SOURCE)) is not table

    def test_run_fills_the_cache_with_bound_uops(self):
        program = assemble(SOURCE)
        Machine(program).run()
        table = uop_table(program)
        assert set(table) == {0, 1, 2, 3}
        for pc, uop in table.items():
            assert isinstance(uop, DecodedOp)
            assert uop.instr is program.instructions[pc]

    def test_stale_entries_are_revalidated_by_identity(self):
        # The pipeline re-decodes when the cached uop's instruction is not
        # the one at that pc — the guard that makes instruction-object
        # reuse (e.g. by the off-load pass) safe.
        program = assemble(SOURCE)
        machine = Machine(program)
        machine.run()
        table = uop_table(program)
        stale = table[1]
        table[1] = decode(program.instructions[2], program, 2)
        machine = Machine(program)
        machine.state.write(MM[0], 0)
        machine.state.write(MM[1], simd.join([1, 0, 0, 0], 16))
        machine.run()
        assert table[1].instr is program.instructions[1]
        assert simd.split(machine.state.mmx[0], 16).tolist()[0] == 3
        assert stale.instr is program.instructions[1]

    def test_branch_targets_resolve_per_program(self):
        # Same source, two Programs: each uop jumps within its own program.
        first = assemble(SOURCE)
        second = assemble("nop\n" + SOURCE)
        Machine(first).run()
        Machine(second).run()
        loop_first = uop_table(first)[2]
        loop_second = uop_table(second)[3]
        assert loop_first.is_branch and loop_second.is_branch
        assert loop_first.instr.name == loop_second.instr.name == "loop"


class TestBackendBinding:
    def _run(self, backend):
        with simd.use_backend(backend):
            program = assemble(
                "paddsw mm0, mm1\npmullw mm0, mm2\npsubusb mm0, mm3\nhalt"
            )
            machine = Machine(program)
            machine.state.write(MM[0], 0x7FFF_8000_1234_ABCD)
            machine.state.write(MM[1], 0x0001_FFFF_0101_0101)
            machine.state.write(MM[2], 0x0002_0003_0004_0005)
            machine.state.write(MM[3], 0x00FF_0080_0000_0001)
            stats = machine.run()
        return machine.state.mmx[0], stats

    def test_backends_agree_on_state_and_stats(self):
        swar_word, swar_stats = self._run("swar")
        ref_word, ref_stats = self._run("reference")
        assert swar_word == ref_word
        assert swar_stats.as_dict() == ref_stats.as_dict()

    def test_handlers_bind_at_decode_time(self):
        program = assemble("paddw mm0, mm1\nhalt")
        Machine(program).run()  # decoded under the default swar backend
        bound = uop_table(program)[0]
        with simd.use_backend("reference"):
            # Already-decoded uops keep their handler; only fresh decodes
            # see the new backend.
            rebound = decode(program.instructions[0], program, 0)
        assert bound.run is not rebound.run


class TestExecuteWrapper:
    def test_single_step_advances_pc(self):
        program = assemble("mov r1, 7\nhalt")
        machine = Machine(program)
        outcome = execute(program.instructions[machine.state.pc],
                          machine.state, machine.memory, program)
        assert machine.state.scalar[1] == 7
        assert outcome.next_pc == 1
        assert not machine.state.halted

    def test_branch_outcome_reports_target(self):
        program = assemble("jmp done\nnop\ndone: halt")
        machine = Machine(program)
        outcome = execute(program.instructions[machine.state.pc],
                          machine.state, machine.memory, program)
        assert outcome.next_pc == 2
        assert outcome.taken

    def test_halt_pins_pc(self):
        program = assemble("halt")
        machine = Machine(program)
        outcome = execute(program.instructions[machine.state.pc],
                          machine.state, machine.memory, program)
        assert machine.state.halted
        assert outcome.next_pc == 0

    def test_functional_and_pipelined_agree(self):
        def fresh():
            machine = Machine(assemble(SOURCE))
            machine.state.write(MM[1], simd.join([2, 0, 0, 0], 16))
            return machine

        pipelined = fresh()
        pipelined.run()
        functional = fresh()
        functional.run_functional()
        assert pipelined.state.mmx[0] == functional.state.mmx[0]
        assert pipelined.state.scalar[0] == functional.state.scalar[0]

"""Tests for the experiment suite and the table/figure regeneration."""

import pytest

from repro.experiments import ExperimentSuite, fig9, paper_data, table1, table2, table3


@pytest.fixture(scope="module")
def suite():
    return ExperimentSuite(fast=True)


class TestPaperData:
    def test_table1_rows_complete(self):
        assert set(paper_data.TABLE1) == {"A", "B", "C", "D"}

    def test_table2_and_3_aligned(self):
        assert set(paper_data.TABLE2) == set(paper_data.TABLE3)
        assert len(paper_data.TABLE2) == 8

    def test_offload_ranges_match_table3(self):
        values = [row["pct_mmx_instr"] for row in paper_data.TABLE3.values()]
        assert min(values) == pytest.approx(paper_data.OFFLOAD_PCT_MMX_RANGE[0])
        assert max(values) == pytest.approx(paper_data.OFFLOAD_PCT_MMX_RANGE[1])


class TestTable1:
    def test_model_tracks_paper(self):
        experiment = table1()
        assert len(experiment.rows) == 4
        for row in experiment.rows:
            name = row[0]
            model_area, paper_area = float(row[1]), float(row[2])
            assert model_area == pytest.approx(paper_area, rel=0.01), name
            model_delay, paper_delay = float(row[3]), float(row[4])
            assert model_delay == pytest.approx(paper_delay, rel=0.25), name

    def test_config_d_die_fraction_under_one_percent(self):
        experiment = table1()
        row_d = experiment.rows[-1]
        assert float(row_d[-1].rstrip("%")) < 1.0

    def test_renders(self):
        assert "Table 1" in table1().text


class TestSuite:
    def test_all_eight_kernels(self, suite):
        comparisons = suite.comparisons()
        assert set(comparisons) == set(paper_data.TABLE2)

    def test_comparisons_cached(self, suite):
        assert suite.comparison("FIR12") is suite.comparison("FIR12")

    def test_fast_suite_shrinks_fft1024(self, suite):
        kernel = suite.kernel("FFT1024")
        assert kernel.name == "FFT1024" and kernel.n == 256


class TestTable2(object):
    def test_scaled_clocks_match_paper(self, suite):
        experiment = table2(suite)
        for row in experiment.rows:
            assert row[1] == row[2]  # scaling calibrates clocks exactly

    def test_branches_same_order_of_magnitude(self, suite):
        experiment = table2(suite)
        for row in experiment.rows:
            measured = float(row[3])
            published = float(row[4])
            assert measured / published < 50 and published / measured < 50, row[0]


class TestTable3:
    def test_permute_share_shape(self, suite):
        """FIR lowest, transpose/DCT high — the paper's §5.2.4 ordering."""
        experiment = table3(suite)
        shares = {row[0]: float(row[3].rstrip("%")) for row in experiment.rows}
        assert shares["FIR22"] <= shares["FIR12"]
        assert shares["MatrixTranspose"] > shares["FIR12"]
        assert shares["DCT"] > shares["FIR22"]

    def test_offload_rates_positive(self, suite):
        experiment = table3(suite)
        rates = {row[0]: float(row[7].rstrip("%")) for row in experiment.rows}
        for name in ("FIR12", "DCT", "MatrixMultiply", "MatrixTranspose"):
            assert rates[name] > 0, name


class TestFig9:
    def test_speedup_shape(self, suite):
        experiment = fig9(suite)
        speedups = {row[0]: float(row[3]) for row in experiment.rows}
        # SPU never loses
        assert all(value >= 0.999 for value in speedups.values())
        # the low-MMX-utilization kernels barely move (§5.2.2)
        for name in paper_data.FIG9_LOW_IMPACT:
            assert speedups[name] < 1.05, name
        # the inter-word-bound kernels gain the most
        top = max(speedups, key=speedups.get)
        assert top in paper_data.FIG9_HIGH_IMPACT
        # FIR sits in between
        assert speedups["FIR12"] > min(speedups[k] for k in paper_data.FIG9_LOW_IMPACT)

    def test_mmx_busy_fractions(self, suite):
        experiment = fig9(suite)
        busy = {row[0]: float(row[4].rstrip("%")) for row in experiment.rows}
        assert busy["IIR"] < 20 and busy["FFT128"] < 20
        assert busy["DCT"] > 50 and busy["MatrixTranspose"] > 50

    def test_instructions_saved_positive_where_offloaded(self, suite):
        experiment = fig9(suite)
        for row in experiment.rows:
            assert int(row[6]) >= 0


class TestReport:
    def test_generate_report_fast(self, tmp_path):
        from repro.experiments import write_report

        path = write_report(tmp_path / "R.md", fast=True)
        text = path.read_text()
        for heading in ("Table 1", "Table 2", "Table 3", "Figure 9",
                        "die-area claim", "start-up cost", "Energy", "Code size"):
            assert heading in text
        assert "0.91%" in text  # the <1% claim
        assert "MatrixTranspose" in text

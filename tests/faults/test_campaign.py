"""Campaign harness: classification, determinism, report schema, CLI."""

import json

import pytest

from repro.cli import main
from repro.faults import (
    OUTCOMES,
    classify_injection,
    run_check,
)
from repro.faults.report import check_report, render_check
from repro.obs import SCHEMA_VERSION


class FakeStats:
    def __init__(self, finished=True):
        self.finished = finished


class TestClassifyInjection:
    def test_escaped_exception_is_detected(self):
        outcome = classify_injection(None, RuntimeError("boom"), None, {})
        assert outcome == "detected"

    def test_fault_events_are_detected_even_with_good_output(self):
        outcome = classify_injection(FakeStats(), None, True, {"fault": 2})
        assert outcome == "detected"

    def test_fail_stop_is_detected(self):
        outcome = classify_injection(FakeStats(finished=False), None, None, {})
        assert outcome == "detected"

    def test_clean_finish_with_match_is_masked(self):
        outcome = classify_injection(FakeStats(), None, True, {"fault": 0})
        assert outcome == "masked"

    def test_clean_finish_with_mismatch_is_silent(self):
        outcome = classify_injection(FakeStats(), None, False, {})
        assert outcome == "silent"


KERNELS = ("DotProduct", "MatrixTranspose")


@pytest.fixture(scope="module")
def small_check():
    return run_check(kernels=KERNELS, faults=12, seed=7)


class TestRunCheck:
    def test_clean_differential_passes(self, small_check):
        assert small_check.clean_ok
        for entry in small_check.clean:
            for variant in ("mmx", "spu"):
                assert entry["variants"][variant]["match"]

    def test_every_injection_is_classified(self, small_check):
        assert len(small_check.injections) == 12
        for record in small_check.injections:
            assert record["outcome"] in OUTCOMES
            assert record["kernel"] in KERNELS
            assert record["fired"] is True
        counts = small_check.outcome_counts()
        assert sum(counts.values()) == 12

    def test_injections_round_robin_over_sorted_kernels(self, small_check):
        ordered = sorted(KERNELS)
        for record in small_check.injections:
            assert record["kernel"] == ordered[record["index"] % len(ordered)]

    def test_campaign_is_bit_identical_across_runs(self):
        again = run_check(kernels=KERNELS, faults=12, seed=7)
        a = json.dumps(check_report(again), sort_keys=True, default=str)
        b = json.dumps(
            check_report(run_check(kernels=KERNELS, faults=12, seed=7)),
            sort_keys=True, default=str,
        )
        assert a == b

    def test_different_seed_changes_the_campaign(self, small_check):
        other = run_check(kernels=KERNELS, faults=12, seed=8)
        ours = [r["spec"] for r in small_check.injections]
        theirs = [r["spec"] for r in other.injections]
        assert ours != theirs

    def test_clean_only_check_has_no_campaign(self):
        result = run_check(kernels=("DotProduct",))
        assert result.campaign is None
        assert result.injections == []
        assert result.clean_ok


class TestReport:
    def test_envelope_and_schema(self, small_check):
        report = check_report(small_check)
        assert report["schema"] == SCHEMA_VERSION
        assert report["kind"] == "fault-campaign"
        body = report["data"]
        assert body["clean"]["ok"] is True
        assert body["campaign"]["seed"] == 7
        assert body["campaign"]["faults"] == 12
        assert body["campaign"]["resilience"] == "degrade"
        assert len(body["injections"]) == 12
        summary = body["summary"]
        assert sum(summary["outcomes"].values()) == 12
        assert summary["fired"] == 12
        by_kind_total = sum(
            count
            for outcomes in summary["by_kind"].values()
            for count in outcomes.values()
        )
        assert by_kind_total == 12

    def test_report_is_json_serializable(self, small_check):
        json.dumps(check_report(small_check))

    def test_render_mentions_outcomes_and_status(self, small_check):
        text = render_check(small_check)
        assert "Differential self-check" in text
        assert "Fault campaign: 12 injections, seed 7" in text
        assert "clean differential check: PASS" in text


class TestCheckCli:
    def test_text_mode_exits_zero(self, capsys):
        code = main(["check", "dotprod", "--faults", "4", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "clean differential check: PASS" in out

    def test_json_mode_writes_schema_versioned_report(self, tmp_path, capsys):
        target = tmp_path / "check.json"
        code = main([
            "check", "dotprod", "matrixt",  # forgiving prefixes
            "--faults", "4", "--seed", "3", "--json", str(target),
        ])
        assert code == 0
        report = json.loads(target.read_text())
        assert report["schema"] == SCHEMA_VERSION
        assert report["kind"] == "fault-campaign"
        assert report["data"]["kernels"] == ["DotProduct", "MatrixTranspose"]
        assert len(report["data"]["injections"]) == 4

    def test_unknown_kernel_is_a_cli_error(self, capsys):
        code = main(["check", "nosuchkernel"])
        assert code == 2
        assert "unknown kernel" in capsys.readouterr().err

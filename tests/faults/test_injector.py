"""Injector semantics: firing, per-kind effects, clone isolation."""

import numpy as np
import pytest

from repro.core import SPUController, SPUProgram
from repro.core.program import SPUState
from repro.errors import RouteError, SPUProgramError
from repro.faults import FaultInjector, FaultSpec, clone_spu_program
from repro.kernels import make_kernel
from repro.resilience import ResilienceMode


def spu_machine(kernel, **kwargs):
    return kernel.machine("spu", **kwargs)


class TestCloneProgram:
    def test_corrupting_the_clone_leaves_the_original_intact(self):
        kernel = make_kernel("DotProduct")
        _, programs = kernel.spu_programs()
        context, original = programs[0]
        clone = clone_spu_program(original)
        index = sorted(original.states)[0]
        clone.states[index] = SPUState(cntr=0, next0=5, next1=5)
        assert original.states[index] != clone.states[index]
        assert original.counter_init == clone.counter_init


class TestInjectorFiring:
    def test_requires_an_attached_spu(self):
        kernel = make_kernel("DotProduct")
        machine = kernel.machine("mmx")
        spec = FaultSpec("register_bit", trigger=0, byte=0, bit=0)
        with pytest.raises(ValueError, match="attach"):
            FaultInjector(machine, spec)

    def test_fires_once_at_the_trigger(self):
        kernel = make_kernel("DotProduct")
        machine = spu_machine(kernel)
        spec = FaultSpec("register_bit", trigger=40, byte=60, bit=0)
        injector = FaultInjector(machine, spec)
        machine.run()
        assert injector.fired
        assert injector.apply_error is None
        assert "byte 60" in injector.applied
        assert not machine.bus.has_subscribers("issue")  # detached itself

    def test_detach_disarms(self):
        kernel = make_kernel("DotProduct")
        machine = spu_machine(kernel)
        injector = FaultInjector(
            machine, FaultSpec("register_bit", trigger=0, byte=0, bit=0)
        )
        injector.detach()
        machine.run()
        assert not injector.fired


class TestPerKindEffects:
    def test_register_bit_flip_in_routed_byte_corrupts_silently(self):
        kernel = make_kernel("DotProduct")
        reference = np.asarray(kernel.reference())
        machine = spu_machine(kernel, resilience="degrade")
        faults = []
        machine.bus.subscribe("fault", faults.append)
        FaultInjector(machine, FaultSpec("register_bit", trigger=5, byte=1, bit=0))
        stats = machine.run()
        output = np.asarray(kernel.extract(machine))
        assert stats.finished
        assert not faults  # an SEU raises no alarms ...
        assert not np.array_equal(output, reference)  # ... but poisons the output

    def test_out_of_window_route_raises_in_strict_mode(self):
        kernel = make_kernel("DotProduct")
        _, programs = kernel.spu_programs()
        context, program = programs[0]
        index = next(i for i in sorted(program.states) if program.states[i].routes)
        slot = sorted(program.states[index].routes)[0]
        spec = FaultSpec(
            "route", trigger=0, context=context, state_index=index,
            slot=slot, granule=0, selector=kernel.config.in_ports + 1,
        )
        machine = spu_machine(kernel)  # strict default
        FaultInjector(machine, spec)
        with pytest.raises(RouteError, match="input window"):
            machine.run()

    def test_out_of_window_route_serializes_in_degrade_mode(self):
        kernel = make_kernel("DotProduct")
        _, programs = kernel.spu_programs()
        context, program = programs[0]
        index = next(i for i in sorted(program.states) if program.states[i].routes)
        slot = sorted(program.states[index].routes)[0]
        spec = FaultSpec(
            "route", trigger=0, context=context, state_index=index,
            slot=slot, granule=0, selector=kernel.config.in_ports + 1,
        )
        machine = spu_machine(kernel, resilience="degrade")
        faults, degrades = [], []
        machine.bus.subscribe("fault", faults.append)
        machine.bus.subscribe("degrade", degrades.append)
        FaultInjector(machine, spec)
        stats = machine.run()
        assert stats.finished
        assert machine.spu.stats.serialized_operands > 0
        assert any(event.kind == "route_error" for event in faults)
        assert any(event.action == "serialize_operand" for event in degrades)

    def test_injected_clone_does_not_poison_the_kernel_cache(self):
        kernel = make_kernel("DotProduct")
        _, programs = kernel.spu_programs()
        context, program = programs[0]
        index = next(i for i in sorted(program.states) if program.states[i].routes)
        slot = sorted(program.states[index].routes)[0]
        spec = FaultSpec(
            "route", trigger=0, context=context, state_index=index,
            slot=slot, granule=0, selector=kernel.config.in_ports + 1,
        )
        machine = spu_machine(kernel, resilience="degrade")
        FaultInjector(machine, spec)
        machine.run()
        # A fresh machine built from the same kernel instance must be clean.
        clean = spu_machine(kernel)
        stats = clean.run()
        assert stats.finished
        output = np.asarray(kernel.extract(clean))
        assert np.array_equal(output, np.asarray(kernel.reference()))

    def test_go_race_suspend_is_silent_corruption(self):
        kernel = make_kernel("DotProduct")
        reference = np.asarray(kernel.reference())
        # Trigger inside the routed loop so the race suspends a live unit.
        machine = spu_machine(kernel, resilience="degrade")
        FaultInjector(machine, FaultSpec("go_race", trigger=30))
        stats = machine.run()
        assert stats.finished
        output = np.asarray(kernel.extract(machine))
        assert not np.array_equal(output, reference)


class TestControllerFaultHooks:
    def build_controller(self, resilience=None):
        controller = SPUController(contexts=1, resilience=resilience)
        program = SPUProgram(counter_init=(4, 0), name="tiny")
        program.add_state(0, SPUState(cntr=0, next0=program.idle_state, next1=0))
        controller.load_program(program)
        return controller, program

    def test_inject_program_skips_validation(self):
        controller, program = self.build_controller()
        broken = clone_spu_program(program)
        broken.states[0] = SPUState(cntr=0, next0=9, next1=9)  # undefined target
        with pytest.raises(SPUProgramError):
            controller.load_program(broken)  # the validated path refuses ...
        controller.inject_program(broken)  # ... the fault hook does not
        assert controller.program() is broken

    def test_undefined_state_raises_in_strict_mode(self):
        controller, program = self.build_controller(resilience="strict")
        broken = clone_spu_program(program)
        broken.states[0] = SPUState(cntr=0, next0=9, next1=9)
        controller.inject_program(broken)
        controller.go()
        controller.step()  # lands on undefined state 9
        with pytest.raises(SPUProgramError, match="undefined state 9"):
            controller.step()

    def test_undefined_state_parks_at_idle_in_degrade_mode(self):
        controller, program = self.build_controller(resilience="degrade")
        broken = clone_spu_program(program)
        broken.states[0] = SPUState(cntr=0, next0=9, next1=9)
        controller.inject_program(broken)
        controller.go()
        controller.step()
        assert controller.step() is None  # the park, not a raise
        assert not controller.active
        assert controller.current_state == controller.idle_state
        assert controller.stats.fault_parks == 1
        assert controller.fault_parked

    def test_go_after_park_recovers(self):
        controller, program = self.build_controller(resilience="degrade")
        broken = clone_spu_program(program)
        broken.states[0] = SPUState(cntr=0, next0=9, next1=9)
        controller.inject_program(broken)
        controller.go()
        controller.step()
        controller.step()
        assert controller.fault_parked
        controller.inject_program(program)  # "reflash" the control memory
        controller.go()
        assert not controller.fault_parked
        assert controller.active

    def test_skew_counter_validates_index(self):
        controller, _ = self.build_controller()
        with pytest.raises(SPUProgramError, match="counter 2"):
            controller.skew_counter(2, 1)

    def test_skew_counter_shifts_the_live_value(self):
        controller, _ = self.build_controller()
        controller.go()
        before = controller.counters[0]
        controller.skew_counter(0, 2)
        assert controller.counters[0] == before + 2

    def test_standalone_controller_defaults_to_strict(self):
        controller, program = self.build_controller()  # resilience=None
        assert controller.resilience is None
        broken = clone_spu_program(program)
        broken.states[0] = SPUState(cntr=0, next0=9, next1=9)
        controller.inject_program(broken)
        controller.go()
        controller.step()
        with pytest.raises(SPUProgramError):
            controller.step()

    def test_attach_inherits_machine_resilience(self):
        kernel = make_kernel("DotProduct")
        machine = spu_machine(kernel, resilience="degrade")
        assert machine.spu.controller.resilience is ResilienceMode.DEGRADE

"""Satellite: the two watchdogs compose — in-simulation detection is an
*outcome*, never an orchestration failure.

A task whose simulation exceeds the cycle watchdog completes successfully
with outcome ``detected``: the runner must not retry it and the circuit
breaker must not count it, no matter how many detections a slice produces.
"""

import json

from repro.faults import run_check, run_check_parallel
from repro.faults.report import check_report
from repro.runner import RunnerConfig

KERNELS = ("DotProduct", "MatrixTranspose")


class TestWatchdogVsRunner:
    def test_watchdog_detections_do_not_retry_or_trip_breaker(self):
        # watchdog_factor=0 + tiny slack: every injection run exceeds the
        # in-simulation cycle budget and classifies as detected.
        result, runner = run_check_parallel(
            kernels=KERNELS, faults=8, seed=3, fast=True, jobs=2,
            watchdog_factor=0, watchdog_slack=5,
        )
        outcomes = [r["outcome"] for r in result.injections]
        assert outcomes == ["detected"] * 8
        # Detection is success at the orchestration layer: one attempt per
        # task, zero retries, breaker untouched.
        assert runner.stats.retries == 0
        assert runner.stats.failed == 0
        assert runner.stats.skipped == 0
        assert runner.stats.breaker_trips == 0
        assert runner.breaker.open_slices == ()

    def test_watchdog_campaign_matches_serial_byte_for_byte(self):
        kwargs = dict(kernels=KERNELS, faults=8, seed=3, fast=True,
                      watchdog_factor=0, watchdog_slack=5)
        serial = run_check(**kwargs)
        parallel, _ = run_check_parallel(jobs=2, **kwargs)
        assert (json.dumps(check_report(parallel), sort_keys=True)
                == json.dumps(check_report(serial), sort_keys=True))


class TestDurations:
    def test_injections_carry_wall_clock_durations(self):
        result = run_check(kernels=("DotProduct",), faults=4, seed=1,
                           fast=True)
        durations = result.injection_durations()
        assert sorted(durations) == [0, 1, 2, 3]
        assert all(d > 0.0 for d in durations.values())

    def test_durations_stay_out_of_the_byte_stable_report(self):
        result = run_check(kernels=("DotProduct",), faults=2, seed=1,
                           fast=True)
        report = check_report(result)
        assert all("duration_s" not in record
                   for record in report["data"]["injections"])

"""Fault specs: taxonomy, generation determinism, campaign validation."""

import pytest

from repro.core import CONFIG_D
from repro.faults import FAULT_KINDS, FaultCampaign, FaultSpec, generate_spec
from repro.kernels import make_kernel
from repro.resilience import ResilienceMode


class TestFaultSpec:
    def test_as_dict_drops_unused_fields(self):
        spec = FaultSpec("register_bit", trigger=7, byte=3, bit=5)
        assert spec.as_dict() == {
            "kind": "register_bit", "trigger": 7, "byte": 3, "bit": 5,
        }

    def test_as_dict_keeps_counter_skew_delta(self):
        spec = FaultSpec("counter_skew", trigger=0, counter=1, delta=-2)
        assert spec.as_dict() == {
            "kind": "counter_skew", "trigger": 0, "counter": 1, "delta": -2,
        }


class TestFaultCampaign:
    def test_resilience_is_parsed(self):
        campaign = FaultCampaign(resilience="halt")
        assert campaign.resilience is ResilienceMode.HALT

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kinds"):
            FaultCampaign(kinds=("register_bit", "cosmic_ray"))

    def test_rng_streams_are_per_injection(self):
        campaign = FaultCampaign(seed=7)
        first = campaign.rng(0).random()
        again = campaign.rng(0).random()
        other = campaign.rng(1).random()
        assert first == again
        assert first != other


class TestGenerateSpec:
    def fixture(self):
        kernel = make_kernel("DotProduct")
        _, controller_programs = kernel.spu_programs()
        return kernel, controller_programs

    def test_deterministic_across_calls(self):
        kernel, programs = self.fixture()
        campaign = FaultCampaign(seed=11)
        specs_a = [
            generate_spec(campaign.rng(i), FAULT_KINDS, 150, programs, kernel.config)
            for i in range(20)
        ]
        specs_b = [
            generate_spec(campaign.rng(i), FAULT_KINDS, 150, programs, kernel.config)
            for i in range(20)
        ]
        assert specs_a == specs_b

    def test_specs_are_well_formed(self):
        kernel, programs = self.fixture()
        campaign = FaultCampaign(seed=3)
        states = {
            (context, index)
            for context, program in programs
            for index in program.states
        }
        for i in range(40):
            spec = generate_spec(
                campaign.rng(i), FAULT_KINDS, 150, programs, kernel.config
            )
            assert spec.kind in FAULT_KINDS
            assert 0 <= spec.trigger < 150
            if spec.kind == "register_bit":
                assert 0 <= spec.byte < 64 and 0 <= spec.bit < 8
            elif spec.kind in ("control_word", "route"):
                assert (spec.context, spec.state_index) in states
            elif spec.kind == "counter_skew":
                assert spec.counter in (0, 1) and spec.delta != 0

    def test_control_word_without_targets_degrades_to_seu(self):
        kernel, _ = self.fixture()
        campaign = FaultCampaign(seed=5)
        spec = generate_spec(
            campaign.rng(0), ("control_word",), 10, [], kernel.config
        )
        assert spec.kind == "register_bit"

    def test_route_selector_can_model_stuck_lines(self):
        """Selectors are drawn past in_ports: out-of-window models stuck lines."""
        kernel, programs = self.fixture()
        campaign = FaultCampaign(seed=1)
        selectors = [
            generate_spec(campaign.rng(i), ("route",), 150, programs, kernel.config).selector
            for i in range(120)
        ]
        assert any(s >= CONFIG_D.in_ports for s in selectors)
        assert any(s < CONFIG_D.in_ports for s in selectors)

"""Tests for the Table 1 area/delay/control-memory models."""

import pytest

from repro.errors import ConfigurationError
from repro.core import CONFIG_A, CONFIG_B, CONFIG_C, CONFIG_D, CrossbarConfig
from repro.hw import (
    bit_crosspoints,
    control_memory_area_mm2,
    control_memory_bits,
    interconnect_area_mm2,
    interconnect_delay_ns,
    pipeline_stages,
    state_bits,
)

PUBLISHED = {
    # config: (area mm², delay ns, control memory mm²) — paper Table 1
    CONFIG_A: (8.14, 3.14, 1.35),
    CONFIG_B: (4.07, 2.29, 1.1),
    CONFIG_C: (4.72, 1.95, 0.6),
    CONFIG_D: (2.36, 0.95, 0.5),
}


class TestCalibratedTable1:
    @pytest.mark.parametrize("config", PUBLISHED)
    def test_area_exact(self, config):
        assert interconnect_area_mm2(config) == pytest.approx(PUBLISHED[config][0])

    @pytest.mark.parametrize("config", PUBLISHED)
    def test_delay_exact(self, config):
        assert interconnect_delay_ns(config) == pytest.approx(PUBLISHED[config][1])

    @pytest.mark.parametrize("config", PUBLISHED)
    def test_control_memory_exact(self, config):
        assert control_memory_area_mm2(config) == pytest.approx(PUBLISHED[config][2])


class TestAnalyticModels:
    @pytest.mark.parametrize("config", PUBLISHED)
    def test_analytic_area_matches_published(self, config):
        """Bit-crosspoint proportionality is exact on the published data."""
        model = interconnect_area_mm2(config, calibrated=False)
        assert model == pytest.approx(PUBLISHED[config][0], rel=1e-3)

    @pytest.mark.parametrize("config", PUBLISHED)
    def test_analytic_delay_within_tolerance(self, config):
        model = interconnect_delay_ns(config, calibrated=False)
        assert model == pytest.approx(PUBLISHED[config][1], rel=0.25)

    @pytest.mark.parametrize("config", PUBLISHED)
    def test_analytic_control_memory_close(self, config):
        model = control_memory_area_mm2(config, calibrated=False)
        assert model == pytest.approx(PUBLISHED[config][2], rel=0.05)

    def test_area_monotone_in_ports(self):
        small = CrossbarConfig("s", in_ports=16, out_ports=16, port_bits=16)
        big = CrossbarConfig("b", in_ports=32, out_ports=16, port_bits=16)
        assert interconnect_area_mm2(big, calibrated=False) > interconnect_area_mm2(
            small, calibrated=False
        )

    def test_delay_monotone_in_ports(self):
        small = CrossbarConfig("s", in_ports=16, out_ports=16, port_bits=16)
        big = CrossbarConfig("b", in_ports=32, out_ports=16, port_bits=16)
        assert interconnect_delay_ns(big, calibrated=False) > interconnect_delay_ns(
            small, calibrated=False
        )


class TestControlMemoryFormula:
    def test_state_bits_figure6(self):
        """Figure 6: config A state word = 1 + 192 + 7 + 7 = 207 bits."""
        assert state_bits(CONFIG_A) == 207
        assert state_bits(CONFIG_B) == 175
        assert state_bits(CONFIG_C) == 95
        assert state_bits(CONFIG_D) == 79

    def test_total_bits_formula(self):
        """The paper's 128*(15+K) with K the interconnect field width."""
        assert control_memory_bits(CONFIG_A) == 128 * (15 + 192)
        assert control_memory_bits(CONFIG_D) == 128 * (15 + 64)

    def test_contexts_scale_area(self):
        one = control_memory_area_mm2(CONFIG_D, contexts=1, calibrated=False)
        two = control_memory_area_mm2(CONFIG_D, contexts=2, calibrated=False)
        assert two == pytest.approx(2 * one)

    def test_calibration_only_for_baseline_shape(self):
        # Extra contexts/states must not return the published value.
        assert control_memory_area_mm2(CONFIG_D, contexts=2) != pytest.approx(0.5)
        assert control_memory_area_mm2(CONFIG_D, num_states=64) != pytest.approx(0.5)

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            control_memory_bits(CONFIG_D, num_states=1)
        with pytest.raises(ConfigurationError):
            control_memory_bits(CONFIG_D, contexts=0)


class TestPipelineStages:
    def test_config_d_fits_one_fast_stage(self):
        # 0.95ns fits within a 1ns (1 GHz) cycle in one stage.
        assert pipeline_stages(CONFIG_D, cycle_time_ns=1.0) == 1

    def test_config_a_needs_more_stages_at_high_clock(self):
        assert pipeline_stages(CONFIG_A, cycle_time_ns=1.0) >= 3

    def test_bad_cycle_time(self):
        with pytest.raises(ConfigurationError):
            pipeline_stages(CONFIG_D, cycle_time_ns=0)


class TestBitCrosspoints:
    def test_values(self):
        assert bit_crosspoints(CONFIG_A) == 64 * 32 * 8
        assert bit_crosspoints(CONFIG_D) == 16 * 16 * 16

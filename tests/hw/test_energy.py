"""Tests for the energy-accounting extension."""

import pytest

from repro.core import CONFIG_A, CONFIG_D
from repro.cpu import Machine, RunStats
from repro.hw import EnergyModel, kernel_energy, run_energy
from repro.isa import assemble
from repro.kernels import DotProductKernel, IIRKernel, TransposeKernel


class TestRunEnergy:
    def run_stats(self, source):
        return Machine(assemble(source)).run()

    def test_every_instruction_pays_overhead(self):
        stats = self.run_stats("paddw mm0, mm1\nadd r0, 1\nhalt")
        energy = run_energy(stats)
        model = EnergyModel()
        assert energy.instruction_overhead_pj == 3 * model.fetch_decode_pj

    def test_functional_energy_by_class(self):
        stats = self.run_stats("pmullw mm0, mm1\nhalt")
        energy = run_energy(stats)
        model = EnergyModel()
        assert energy.functional_pj == model.multiply_pj + model.scalar_pj  # + halt

    def test_no_spu_terms_without_config(self):
        stats = self.run_stats("halt")
        energy = run_energy(stats)
        assert energy.crossbar_pj == 0 and energy.controller_pj == 0

    def test_crossbar_scales_with_config_size(self):
        stats = RunStats()
        stats.spu_routed = 10
        small = run_energy(stats, CONFIG_D, controller_steps=0)
        big = run_energy(stats, CONFIG_A, controller_steps=0)
        assert big.crossbar_pj > small.crossbar_pj

    def test_controller_cost_per_step(self):
        stats = RunStats()
        one = run_energy(stats, CONFIG_D, controller_steps=1)
        ten = run_energy(stats, CONFIG_D, controller_steps=10)
        assert ten.controller_pj == pytest.approx(10 * one.controller_pj)

    def test_total_is_sum(self):
        stats = self.run_stats("paddw mm0, mm1\nhalt")
        energy = run_energy(stats)
        assert energy.total_pj == pytest.approx(
            energy.instruction_overhead_pj + energy.functional_pj
        )


class TestKernelEnergy:
    def test_permute_heavy_kernels_save_energy(self):
        """Deleted instructions stop paying fetch/decode — §7's argument."""
        for kernel in (DotProductKernel(), TransposeKernel()):
            comparison = kernel_energy(kernel)
            assert comparison.savings_fraction > 0.1, comparison.name
            # The added SPU energy is small next to the instruction savings.
            assert comparison.spu.crossbar_pj + comparison.spu.controller_pj < (
                comparison.mmx.total_pj - comparison.spu.instruction_overhead_pj
            )

    def test_low_offload_kernels_near_neutral(self):
        comparison = kernel_energy(IIRKernel())
        assert abs(comparison.savings_fraction) < 0.05

    def test_custom_model(self):
        expensive_crossbar = EnergyModel(crossbar_pj_per_kxp=10_000.0)
        comparison = kernel_energy(DotProductKernel(), model=expensive_crossbar)
        # With an absurd crossbar cost the SPU stops paying off.
        assert comparison.savings_fraction < 0

"""Tests for the §6 large-register-file scaling models."""

import pytest

from repro.errors import ConfigurationError
from repro.hw import (
    PENTIUM3_DIE_MM2,
    benes_network,
    design_options,
    full_crossbar,
    windowed_crossbar,
)


class TestFullCrossbar:
    def test_mmx_class_matches_config_a(self):
        """8×64-bit registers at byte granularity = configuration A."""
        design = full_crossbar(8, 64)
        assert design.area_mm2 == pytest.approx(8.14, rel=1e-3)
        assert design.select_bits == 6
        assert design.control_bits_per_state() == 192  # Figure 6's field

    def test_area_scales_with_crosspoints(self):
        small = full_crossbar(8, 64)
        big = full_crossbar(16, 64)
        assert big.area_mm2 == pytest.approx(2 * small.area_mm2, rel=1e-6)

    def test_altivec_full_crossbar_impractical(self):
        """§6: general inter-word permutation over 32×128 bits is huge."""
        design = full_crossbar(32, 128)
        assert design.area_mm2 > PENTIUM3_DIE_MM2  # bigger than the whole die

    def test_guards(self):
        with pytest.raises(ConfigurationError):
            full_crossbar(6, 64)  # not a power of two
        with pytest.raises(ConfigurationError):
            full_crossbar(8, 64, granule_bits=12)
        with pytest.raises(ConfigurationError):
            full_crossbar(8, 60, granule_bits=8)


class TestWindowedCrossbar:
    def test_window_shrinks_area(self):
        full = full_crossbar(32, 128)
        windowed = windowed_crossbar(32, 128, window_regs=4)
        assert windowed.area_mm2 < full.area_mm2 / 4
        assert not windowed.full_reach

    def test_window_equals_small_file(self):
        windowed = windowed_crossbar(32, 64, window_regs=8)
        full = full_crossbar(8, 64)
        assert windowed.area_mm2 == pytest.approx(full.area_mm2)

    def test_window_bounds(self):
        with pytest.raises(ConfigurationError):
            windowed_crossbar(8, 64, window_regs=16)
        with pytest.raises(ConfigurationError):
            windowed_crossbar(8, 64, window_regs=0)


class TestBenes:
    def test_benes_beats_crossbar_at_scale(self):
        """Multi-stage networks win asymptotically (N log N vs N·M)."""
        crossbar = full_crossbar(32, 128)
        benes = benes_network(32, 128)
        assert benes.area_mm2 < crossbar.area_mm2
        assert benes.full_reach

    def test_benes_delay_is_level_count(self):
        design = benes_network(8, 64)  # 64 ports -> 11 levels
        assert design.delay_ns == pytest.approx(11 * 0.14)

    def test_pipeline_stages(self):
        design = benes_network(32, 128)
        assert design.pipeline_stages(2.0) >= 1
        assert design.pipeline_stages(0.5) > design.pipeline_stages(2.0)
        with pytest.raises(ConfigurationError):
            design.pipeline_stages(0)


class TestDesignOptions:
    def test_option_set(self):
        options = design_options(32, 128)
        names = [d.name for d in options]
        assert names[0].startswith("crossbar")
        assert any(n.startswith("window") for n in names)
        assert names[-1].startswith("benes")

    def test_windows_clipped_to_file(self):
        options = design_options(4, 64, windows=(4, 8))
        assert all(d.window_regs <= 4 for d in options)

    def test_every_option_cheaper_than_full_at_scale(self):
        options = design_options(32, 128)
        full = options[0]
        for design in options[1:]:
            assert design.area_mm2 < full.area_mm2, design.name

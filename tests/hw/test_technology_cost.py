"""Tests for technology scaling and the aggregate cost summary."""

import pytest

from repro.errors import ConfigurationError
from repro.core import CONFIG_A, CONFIG_D, CONFIGS
from repro.hw import (
    PENTIUM3_DIE_MM2,
    TECH_018,
    TECH_025,
    SPUCost,
    Technology,
    die_fraction,
    scale_area_mm2,
    spu_cost,
    table1_rows,
)


class TestScaling:
    def test_feature_scaling_quadratic(self):
        area = scale_area_mm2(1.0, TECH_025, TECH_025)
        assert area == pytest.approx(1.0)
        half = Technology(0.125, 2)
        assert scale_area_mm2(1.0, TECH_025, half, wiring_dominated=False) == pytest.approx(0.25)

    def test_metal_layers_help_wiring(self):
        with_wiring = scale_area_mm2(1.0, TECH_025, TECH_018, wiring_dominated=True)
        without = scale_area_mm2(1.0, TECH_025, TECH_018, wiring_dominated=False)
        assert with_wiring < without

    def test_die_fraction(self):
        assert die_fraction(1.06, 106.0) == pytest.approx(0.01)

    def test_guards(self):
        with pytest.raises(ConfigurationError):
            scale_area_mm2(-1.0)
        with pytest.raises(ConfigurationError):
            die_fraction(1.0, 0)
        with pytest.raises(ConfigurationError):
            Technology(0)
        with pytest.raises(ConfigurationError):
            Technology(0.18, 0)


class TestSPUCost:
    def test_paper_area_claim_config_d(self):
        """§5.1.1: the SPU fits in <1% of the 106mm² 0.18µm P-III die."""
        cost = spu_cost(CONFIG_D)
        assert cost.total_area_mm2 == pytest.approx(2.86)
        assert cost.die_fraction < 0.01

    def test_all_configs_under_ten_percent(self):
        for config in CONFIGS.values():
            assert spu_cost(config).die_fraction < 0.05

    def test_table1_rows_order_and_fields(self):
        rows = table1_rows()
        assert [r.config_name for r in rows] == ["A", "B", "C", "D"]
        for row in rows:
            assert row.total_area_mm2 > 0
            assert row.interconnect_delay_ns > 0
            assert row.state_bits > 15

    def test_cost_total_is_sum(self):
        cost = spu_cost(CONFIG_A)
        assert cost.total_area_mm2 == pytest.approx(
            cost.interconnect_area_mm2 + cost.control_memory_mm2
        )

    def test_extra_contexts_cost_area(self):
        base = spu_cost(CONFIG_D, contexts=1)
        multi = spu_cost(CONFIG_D, contexts=4)
        assert multi.control_memory_mm2 > base.control_memory_mm2
        assert multi.control_memory_bits == 4 * base.control_memory_bits

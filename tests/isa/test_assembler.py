"""Tests for the text assembler, builder API and size encoder."""

import pytest

from repro.errors import AssemblerError
from repro.isa import (
    MM,
    R,
    Imm,
    Label,
    Mem,
    ProgramBuilder,
    assemble,
    disassemble,
    encode_subword_addressing,
    instruction_size,
    program_size,
)

DOT_PRODUCT = """
; paper §4 running example, MMX-only version
loop:
    punpckhwd mm0, mm1
    punpcklwd mm2, mm3
    pmulhw    mm0, mm2
    pmullw    mm0, mm2
    loop      r0, loop
    halt
"""


class TestAssemble:
    def test_basic_program(self):
        program = assemble(DOT_PRODUCT, name="dot")
        assert len(program) == 6
        assert program.labels == {"loop": 0}
        assert program.name == "dot"
        assert program[0].name == "punpckhwd"

    def test_comments_and_blank_lines(self):
        program = assemble("""
        # hash comment
        nop ; trailing
        ; full line
        halt
        """)
        assert [i.name for i in program] == ["nop", "halt"]

    def test_label_on_own_line(self):
        program = assemble("""
        top:
            nop
            jmp top
        """)
        assert program.target("top") == 0

    def test_multiple_labels_same_target(self):
        program = assemble("""
        a:
        b:  nop
            halt
        """)
        assert program.target("a") == program.target("b") == 0

    def test_hex_immediates(self):
        program = assemble("mov r0, 0xFF")
        assert program[0].operands[1] == Imm(255)

    def test_negative_immediates(self):
        program = assemble("add r0, -8")
        assert program[0].operands[1] == Imm(-8)

    def test_memory_operands(self):
        program = assemble("movq mm0, [r1+r2*2-6]")
        mem = program[0].operands[1]
        assert isinstance(mem, Mem)
        assert (mem.base, mem.index, mem.scale, mem.disp) == (R[1], R[2], 2, -6)

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("jmp nowhere")

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("x: nop\nx: nop")

    def test_trailing_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("nop\nend:")

    def test_label_shadowing_register_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("mm0: nop")

    def test_bad_operand_count(self):
        with pytest.raises(AssemblerError) as err:
            assemble("nop\npaddw mm0")
        assert "line 2" in str(err.value)

    def test_unbalanced_brackets(self):
        with pytest.raises(AssemblerError):
            assemble("movq mm0, [r1")

    def test_roundtrip_through_disassembler(self):
        program = assemble(DOT_PRODUCT)
        again = assemble(disassemble(program))
        assert [i.name for i in again] == [i.name for i in program]
        assert again.labels == program.labels


class TestBuilder:
    def test_builder_matches_text(self):
        b = ProgramBuilder("dot")
        b.label("loop")
        b.punpckhwd("mm0", "mm1")
        b.punpcklwd("mm2", "mm3")
        b.pmulhw("mm0", "mm2")
        b.pmullw("mm0", "mm2")
        b.loop("r0", "loop")
        b.halt()
        built = b.build()
        text = assemble(DOT_PRODUCT)
        assert [str(i) for i in built] == [str(i) for i in text]

    def test_builder_accepts_objects(self):
        b = ProgramBuilder()
        b.movq(MM[0], Mem(base=R[1], disp=8))
        b.add(R[1], 8)
        program = b.build()
        assert str(program[0]) == "movq mm0, [r1+8]"
        assert program[1].operands[1] == Imm(8)

    def test_builder_keyword_escapes(self):
        b = ProgramBuilder()
        b.and_("r0", "r1")
        b.or_("r0", 1)
        program = b.build()
        assert [i.name for i in program] == ["and", "or"]

    def test_builder_tagging(self):
        b = ProgramBuilder()
        b.psrlq("mm0", 16).tag("align")
        assert b.build()[0].tag == "align"

    def test_builder_emit_tag_kwarg(self):
        b = ProgramBuilder()
        b.emit("psrlq", "mm0", 16, tag="align")
        assert b.build()[0].tag == "align"

    def test_builder_unknown_opcode(self):
        with pytest.raises(AttributeError):
            ProgramBuilder().frobnicate("mm0")

    def test_builder_trailing_label(self):
        b = ProgramBuilder()
        b.nop()
        b.label("end")
        with pytest.raises(AssemblerError):
            b.build()

    def test_builder_duplicate_label(self):
        b = ProgramBuilder()
        b.label("x")
        b.nop()
        with pytest.raises(AssemblerError):
            b.label("x")


class TestEncoding:
    def test_sizes_monotone_with_operand_complexity(self):
        plain = assemble("paddw mm0, mm1")[0]
        mem = assemble("paddw mm0, [r1+256]")[0]
        assert instruction_size(plain) < instruction_size(mem)

    def test_mmx_escape_byte(self):
        scalar = assemble("add r0, r1")[0]
        packed = assemble("paddw mm0, mm1")[0]
        assert instruction_size(packed) == instruction_size(scalar) + 1

    def test_program_size_sums(self):
        program = assemble(DOT_PRODUCT)
        assert program_size(program) == sum(instruction_size(i) for i in program)

    def test_subword_addressing_costs_more(self):
        """§3: sub-word operand fields inflate code size; SPU avoids that."""
        program = assemble(DOT_PRODUCT)
        assert encode_subword_addressing(program) > program_size(program)

    def test_subword_addressing_scalar_unchanged(self):
        program = assemble("add r0, r1\nhalt")
        assert encode_subword_addressing(program) == program_size(program)


class TestProgramHelpers:
    def test_permute_indices(self):
        program = assemble(DOT_PRODUCT)
        assert program.permute_indices() == [0, 1]

    def test_mmx_count(self):
        program = assemble(DOT_PRODUCT)
        assert program.mmx_count() == 4

"""Round-trip tests for the binary machine-code format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.isa import (
    MM,
    R,
    Imm,
    Instruction,
    Mem,
    ProgramBuilder,
    assemble,
    assemble_binary,
    decode_program,
    encode_instruction,
    lookup,
)


def roundtrip_text(source: str) -> None:
    program = assemble(source)
    decoded = decode_program(assemble_binary(program))
    originals = [str(i).split(": ")[-1] for i in program]
    recovered = [str(i) for i in decoded]
    for original, back in zip(originals, recovered):
        # Branch labels are renamed L<index>; compare opcode+non-label operands.
        o_parts, b_parts = original.split(), back.split()
        assert o_parts[0] == b_parts[0]
        if not program[originals.index(original) if False else 0].is_branch:
            pass
    # Structural equivalence: re-encoding the decoded program is identical.
    assert assemble_binary(decoded) == assemble_binary(program)


class TestRoundTrip:
    def test_representative_stream(self):
        roundtrip_text("""
            mov r0, 8
            pxor mm2, mm2
        loop:
            movq mm0, [r1]
            pmaddwd mm0, [r1+r2*2+8]
            paddd mm2, mm0
            psrlq mm2, 32
            pshufw mm3, mm0, 0x1B
            cmp r0, 4
            jz skip
            add r1, 8
        skip:
            loop r0, loop
            movq [r1-128], mm2
            halt
        """)

    def test_all_kernel_programs_roundtrip(self):
        from repro.kernels import ALL_KERNELS
        for name, cls in ALL_KERNELS.items():
            if name == "FFT1024":
                continue  # same code shape as FFT128
            program = cls().mmx_program()
            raw = assemble_binary(program)
            decoded = decode_program(raw)
            assert assemble_binary(decoded) == raw, name
            assert len(decoded) == len(program), name

    def test_decoded_program_executes_identically(self):
        import numpy as np
        from repro.cpu import Machine
        from repro.kernels import DotProductKernel
        kernel = DotProductKernel(blocks=4)
        decoded = decode_program(assemble_binary(kernel.mmx_program()))
        machine = Machine(decoded)
        kernel.prepare(machine)
        machine.run()
        assert np.array_equal(kernel.extract(machine), kernel.reference())

    def test_imm_sizes(self):
        for value in (0, 1, -1, 127, -128, 128, -129, 32767, -32768, 2**31 - 1, -(2**31)):
            program = assemble(f"mov r0, {value}\nhalt")
            decoded = decode_program(assemble_binary(program))
            assert decoded[0].operands[1] == Imm(value)

    def test_disp_sizes(self):
        for disp in (0, 1, -1, 127, -128, 128, 100000, -100000):
            program = assemble(f"movq mm0, [r1+{disp}]" if disp >= 0
                               else f"movq mm0, [r1{disp}]")
            program.instructions.append(assemble("halt")[0])
            decoded = decode_program(assemble_binary(program))
            assert decoded[0].operands[1].disp == disp

    def test_scales(self):
        for scale in (1, 2, 4, 8):
            program = assemble(f"movq mm0, [r1+r2*{scale}]\nhalt")
            decoded = decode_program(assemble_binary(program))
            assert decoded[0].operands[1].scale == scale

    def test_branch_targets(self):
        program = assemble("top: nop\njmp end\nnop\nend: jmp top\nhalt")
        decoded = decode_program(assemble_binary(program))
        assert decoded.target("L3") == 3
        assert decoded.target("L0") == 0

    def test_movd_register_files_distinguished(self):
        program = assemble("movd mm0, r9\nmovd r9, mm0\nhalt")
        decoded = decode_program(assemble_binary(program))
        assert str(decoded[0]) == "movd mm0, r9"
        assert str(decoded[1]) == "movd r9, mm0"


class TestErrors:
    def test_unresolved_label(self):
        instr = assemble("jmp x\nx: halt")[0]
        with pytest.raises(EncodingError):
            encode_instruction(instr)

    def test_truncated_stream(self):
        raw = assemble_binary(assemble("pmaddwd mm0, mm1\nhalt"))
        with pytest.raises(EncodingError):
            decode_program(raw[:-1])  # cuts halt mid-instruction

    def test_unknown_opcode_byte(self):
        with pytest.raises(EncodingError):
            decode_program(bytes([0x7F, 0, 0]))

    def test_oversized_immediate(self):
        instr = Instruction(opcode=lookup("mov"), operands=(R[0], Imm(2**40)))
        with pytest.raises(EncodingError):
            encode_instruction(instr)

    def test_branch_out_of_range(self):
        program = assemble("top: jmp top\nhalt")
        raw = bytearray(assemble_binary(program))
        raw[-2:] = (100).to_bytes(2, "little", signed=True)  # bogus rel
        with pytest.raises(EncodingError):
            decode_program(bytes(raw))


MMX_REGS = st.sampled_from([f"mm{i}" for i in range(8)])
SCALAR_REGS = st.sampled_from([f"r{i}" for i in range(16)])


@st.composite
def random_programs(draw):
    b = ProgramBuilder("fuzz")
    for _ in range(draw(st.integers(1, 12))):
        choice = draw(st.integers(0, 5))
        if choice == 0:
            b.emit(draw(st.sampled_from(["paddw", "psubb", "pand", "pmaddwd"])),
                   draw(MMX_REGS), draw(MMX_REGS))
        elif choice == 1:
            b.emit("movq", draw(MMX_REGS),
                   Mem(base=R[draw(st.integers(0, 15))],
                       disp=draw(st.integers(-1000, 1000))))
        elif choice == 2:
            b.emit(draw(st.sampled_from(["add", "mov", "xor"])),
                   draw(SCALAR_REGS), draw(st.integers(-(2**31), 2**31 - 1)))
        elif choice == 3:
            b.emit("psllw", draw(MMX_REGS), draw(st.integers(0, 63)))
        elif choice == 4:
            b.emit("pshufw", draw(MMX_REGS), draw(MMX_REGS), draw(st.integers(0, 255)))
        else:
            b.emit("ldw", draw(SCALAR_REGS),
                   Mem(base=R[draw(st.integers(0, 15))],
                       index=R[draw(st.integers(0, 15))],
                       scale=draw(st.sampled_from([1, 2, 4, 8])),
                       disp=draw(st.integers(-(10**5), 10**5))))
    b.halt()
    return b.build()


class TestPropertyRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(random_programs())
    def test_fuzz_roundtrip(self, program):
        raw = assemble_binary(program)
        decoded = decode_program(raw)
        assert assemble_binary(decoded) == raw
        assert [i.name for i in decoded] == [i.name for i in program]
        for original, back in zip(program, decoded):
            assert original.operands == back.operands

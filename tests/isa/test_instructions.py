"""Tests for the instruction IR: validation, hazard sets, permute analysis."""

import pytest

from repro.errors import AssemblerError
from repro.isa import FLAGS, MM, R, Imm, Instruction, Label, Mem, lookup


def make(name, *operands, tag=None):
    return Instruction(opcode=lookup(name), operands=operands, tag=tag)


class TestValidation:
    def test_operand_count(self):
        with pytest.raises(AssemblerError):
            make("paddw", MM[0])

    def test_operand_kind(self):
        with pytest.raises(AssemblerError):
            make("paddw", R[0], MM[1])
        with pytest.raises(AssemblerError):
            make("add", MM[0], Imm(1))

    def test_mem_to_mem_move_rejected(self):
        with pytest.raises(AssemblerError):
            make("movq", Mem(base=R[0]), Mem(base=R[1]))

    def test_movq_requires_mmx(self):
        with pytest.raises(AssemblerError):
            make("movd", R[0], R[1])

    def test_two_memory_operands_rejected(self):
        # no opcode signature allows it, but the extra guard catches mm|mem twice
        with pytest.raises(AssemblerError):
            make("movq", Mem(base=R[0]), Mem(base=R[0]))

    def test_valid_packed(self):
        instr = make("paddw", MM[0], MM[1])
        assert instr.is_mmx and not instr.is_permute


class TestHazardSets:
    def test_rmw_reads_dest(self):
        instr = make("paddw", MM[0], MM[1])
        assert instr.regs_read() == frozenset({MM[0], MM[1]})
        assert instr.regs_written() == frozenset({MM[0]})

    def test_movq_reg_reg_reads_source_only(self):
        instr = make("movq", MM[0], MM[1])
        assert instr.regs_read() == frozenset({MM[1]})
        assert instr.regs_written() == frozenset({MM[0]})

    def test_load_reads_address_regs(self):
        instr = make("movq", MM[0], Mem(base=R[1], index=R[2], scale=2))
        assert instr.regs_read() == frozenset({R[1], R[2]})
        assert instr.regs_written() == frozenset({MM[0]})
        assert instr.reads_memory and not instr.writes_memory

    def test_store_reads_value_and_address(self):
        instr = make("movq", Mem(base=R[1]), MM[3])
        assert instr.regs_read() == frozenset({R[1], MM[3]})
        assert instr.regs_written() == frozenset()
        assert instr.writes_memory and not instr.reads_memory

    def test_scalar_flags_written(self):
        assert FLAGS in make("add", R[0], Imm(1)).regs_written()
        assert FLAGS in make("dec", R[0]).regs_written()
        assert FLAGS not in make("mov", R[0], Imm(1)).regs_written()

    def test_cmp_writes_flags_not_reg(self):
        instr = make("cmp", R[0], R[1])
        assert instr.regs_written() == frozenset({FLAGS})
        assert instr.regs_read() == frozenset({R[0], R[1]})

    def test_conditional_branch_reads_flags(self):
        assert FLAGS in make("jnz", Label("x")).regs_read()
        assert make("jmp", Label("x")).regs_read() == frozenset()

    def test_loop_reads_and_writes_counter(self):
        instr = make("loop", R[0], Label("top"))
        assert R[0] in instr.regs_read()
        assert R[0] in instr.regs_written()
        assert FLAGS in instr.regs_written()

    def test_lea_reads_address_only(self):
        # lea forms the address but never touches memory.
        instr = make("lea", R[0], Mem(base=R[1], disp=8))
        assert instr.regs_read() == frozenset({R[1]})
        assert not instr.reads_memory and not instr.writes_memory

    def test_mmx_filtered_sets(self):
        instr = make("paddw", MM[0], MM[1])
        assert instr.mmx_regs_read() == frozenset({MM[0], MM[1]})
        assert make("add", R[0], R[1]).mmx_regs_read() == frozenset()


class TestPermuteAnalysis:
    def test_unpack_is_permute(self):
        assert make("punpcklwd", MM[0], MM[1]).is_permute
        assert make("punpcklwd", MM[0], MM[1]).is_alignment_candidate

    def test_movq_reg_reg_is_candidate_only(self):
        instr = make("movq", MM[0], MM[1])
        assert not instr.is_permute
        assert instr.is_alignment_candidate

    def test_movq_mem_not_candidate(self):
        assert not make("movq", MM[0], Mem(base=R[0])).is_alignment_candidate

    def test_byte_shift_is_candidate(self):
        assert make("psrlq", MM[0], Imm(16)).is_alignment_candidate
        assert make("psllq", MM[0], Imm(8)).is_alignment_candidate

    def test_subbyte_shift_not_candidate(self):
        assert not make("psrlq", MM[0], Imm(4)).is_alignment_candidate
        assert not make("psllw", MM[0], Imm(8)).is_alignment_candidate

    def test_register_count_shift_not_candidate(self):
        assert not make("psrlq", MM[0], MM[1]).is_alignment_candidate


class TestRendering:
    def test_str(self):
        instr = make("paddw", MM[0], Mem(base=R[1], disp=8))
        assert str(instr) == "paddw mm0, [r1+8]"

    def test_tagging_preserves_fields(self):
        instr = make("psrlq", MM[0], Imm(16)).with_tag("align")
        assert instr.tag == "align" and instr.name == "psrlq"

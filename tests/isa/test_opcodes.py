"""Tests for the opcode table's structural metadata."""

import pytest

from repro.errors import AssemblerError
from repro.isa import InstrClass, all_opcodes, lookup


class TestTable:
    def test_lookup_case_insensitive(self):
        assert lookup("PADDW") is lookup("paddw")

    def test_unknown_opcode(self):
        with pytest.raises(AssemblerError):
            lookup("frobnicate")

    def test_pairing_classes(self):
        assert lookup("paddw").iclass is InstrClass.MMX_ALU
        assert lookup("pmullw").iclass is InstrClass.MMX_MUL
        assert lookup("punpcklwd").iclass is InstrClass.MMX_SHIFT
        assert lookup("movq").iclass is InstrClass.MMX_MOV
        assert lookup("add").iclass is InstrClass.SCALAR
        assert lookup("ldw").iclass is InstrClass.LOAD
        assert lookup("stw").iclass is InstrClass.STORE
        assert lookup("jnz").iclass is InstrClass.BRANCH

    def test_multiply_latency_is_three(self):
        """All MMX instructions are single cycle except multiplies (§2)."""
        for opcode in all_opcodes():
            if opcode.iclass is InstrClass.MMX_MUL:
                assert opcode.latency == 3, opcode.name
            elif opcode.name == "imul":
                assert opcode.latency == 4
            else:
                assert opcode.latency == 1, opcode.name

    def test_permute_flags(self):
        for name in ("punpcklbw", "punpckhwd", "punpckldq", "packsswb", "packssdw",
                     "packuswb", "pshufw"):
            assert lookup(name).is_permute, name
        for name in ("paddw", "pmaddwd", "psllw", "movd"):
            assert not lookup(name).is_permute, name

    def test_maybe_permute_flags(self):
        assert lookup("movq").maybe_permute
        assert lookup("psllq").maybe_permute
        assert lookup("psrlq").maybe_permute
        assert not lookup("psllw").maybe_permute

    def test_memory_ops_u_pipe_only(self):
        assert lookup("ldw").pipes == frozenset({"U"})
        assert lookup("stw").pipes == frozenset({"U"})

    def test_widths(self):
        assert lookup("paddb").width == 8
        assert lookup("paddw").width == 16
        assert lookup("paddd").width == 32
        assert lookup("paddq").width == 64
        assert lookup("punpckhdq").width == 32
        assert lookup("pand").width is None

    def test_sem_shared_across_widths(self):
        assert lookup("paddb").sem == lookup("paddd").sem == "padd"

    def test_mmx_classification(self):
        assert lookup("pxor").is_mmx
        assert not lookup("add").is_mmx
        assert not lookup("jmp").is_mmx

    def test_extension_flags(self):
        assert lookup("pshufw").extension
        assert lookup("pavgb").extension
        assert not lookup("paddw").extension

    def test_table_covers_core_mmx(self):
        names = {op.name for op in all_opcodes()}
        core = {
            "paddb", "paddw", "paddd", "paddsb", "paddsw", "paddusb", "paddusw",
            "psubb", "psubw", "psubd", "psubsb", "psubsw", "psubusb", "psubusw",
            "pmullw", "pmulhw", "pmaddwd",
            "pand", "pandn", "por", "pxor",
            "pcmpeqb", "pcmpeqw", "pcmpeqd", "pcmpgtb", "pcmpgtw", "pcmpgtd",
            "psllw", "pslld", "psllq", "psrlw", "psrld", "psrlq", "psraw", "psrad",
            "packsswb", "packssdw", "packuswb",
            "punpcklbw", "punpcklwd", "punpckldq",
            "punpckhbw", "punpckhwd", "punpckhdq",
            "movq", "movd", "emms",
        }
        assert core <= names

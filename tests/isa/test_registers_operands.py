"""Tests for register parsing and operand construction."""

import pytest

from repro.errors import AssemblerError
from repro.isa import MM, R, Imm, Mem, RegClass, is_register_name, parse_memory, parse_register


class TestRegisters:
    def test_mmx_register_names(self):
        assert [r.name for r in MM] == [f"mm{i}" for i in range(8)]

    def test_scalar_register_names(self):
        assert [r.name for r in R] == [f"r{i}" for i in range(16)]

    def test_parse_register(self):
        assert parse_register("MM3") is MM[3]
        assert parse_register(" r11 ") is R[11]

    def test_parse_unknown_register(self):
        with pytest.raises(AssemblerError):
            parse_register("xmm0")

    def test_is_register_name(self):
        assert is_register_name("mm0")
        assert is_register_name("r15")
        assert not is_register_name("r16")
        assert not is_register_name("mm8")
        assert not is_register_name("loop")

    def test_register_classes(self):
        assert MM[0].cls is RegClass.MMX and MM[0].is_mmx
        assert R[0].cls is RegClass.SCALAR and not R[0].is_mmx

    def test_registers_hashable_and_interned(self):
        assert parse_register("mm5") is MM[5]
        assert len({MM[0], MM[0], R[0]}) == 2


class TestMemoryOperands:
    def test_base_only(self):
        mem = parse_memory("[r1]")
        assert mem.base is R[1] and mem.disp == 0 and mem.index is None

    def test_base_disp(self):
        assert parse_memory("[r1+8]").disp == 8
        assert parse_memory("[r1-4]").disp == -4
        assert parse_memory("[r2 + 0x10]").disp == 16

    def test_base_index_scale_disp(self):
        mem = parse_memory("[r1+r2*4+6]")
        assert (mem.base, mem.index, mem.scale, mem.disp) == (R[1], R[2], 4, 6)

    def test_base_index_no_scale(self):
        mem = parse_memory("[r1+r2]")
        assert mem.index is R[2] and mem.scale == 1

    def test_multiple_displacements_sum(self):
        assert parse_memory("[r1+8-2]").disp == 6

    def test_str_roundtrip(self):
        for text in ("[r1]", "[r1+8]", "[r1-4]", "[r1+r2*4+6]"):
            assert str(parse_memory(text)) == text

    @pytest.mark.parametrize(
        "bad", ["r1", "[mm0]", "[r1*3]", "[]", "[r1+r2+r3]", "[r1+xyz]", "[-r1]", "[r1+r2*5]"]
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(AssemblerError):
            parse_memory(bad)

    def test_mmx_base_rejected_in_constructor(self):
        with pytest.raises(AssemblerError):
            Mem(base=MM[0])

    def test_imm_str(self):
        assert str(Imm(-7)) == "-7"

"""Tests for the extension kernels (SAD, color-space conversion).

These byte-granularity workloads demonstrate the interconnect-granularity
trade-off of Table 1: configuration D (16-bit ports) cannot route their
widening unpacks; configurations A/B (8-bit ports) can.
"""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.core import CONFIG_A, CONFIG_B, CONFIG_D
from repro.kernels import (
    ALL_KERNELS,
    EXTENSION_KERNELS,
    ColorSpaceKernel,
    SADKernel,
    make_kernel,
)


class TestSAD:
    def test_correct_under_all_configs(self):
        for config in (CONFIG_D, CONFIG_A, CONFIG_B):
            SADKernel(config=config).verify()

    def test_reference_is_plain_sad(self):
        kernel = SADKernel(pixels=64, seed=3)
        expected = np.abs(
            kernel.block_a.astype(int) - kernel.block_b.astype(int)
        ).sum()
        assert kernel.reference()[0] == expected

    def test_identical_blocks_give_zero(self):
        kernel = SADKernel(pixels=32)
        kernel.block_b = kernel.block_a.copy()
        _, out = kernel.run_mmx()
        assert out[0] == 0

    def test_byte_unpacks_blocked_by_config_d(self):
        kernel = SADKernel(config=CONFIG_D)
        assert kernel.removed_permutes == 0

    def test_byte_unpacks_routed_by_config_a(self):
        kernel = SADKernel(config=CONFIG_A)
        assert kernel.removed_permutes == 3  # copy + two punpck?bw
        comparison = kernel.compare()
        assert comparison.speedup > 1.1

    def test_accumulator_live_out_respected(self):
        # The epilogue reads mm2: its last loop writer must never be removed.
        kernel = SADKernel(config=CONFIG_A)
        program, _ = kernel.spu_programs()
        names = [i.name for i in program]
        assert "paddw" in names

    def test_parameter_guards(self):
        with pytest.raises(KernelError):
            SADKernel(pixels=12)
        with pytest.raises(KernelError):
            SADKernel(pixels=4096)


class TestColorSpace:
    def test_correct_under_all_configs(self):
        for config in (CONFIG_D, CONFIG_A):
            ColorSpaceKernel(config=config).verify()

    def test_reference_matches_weights(self):
        kernel = ColorSpaceKernel(pixels=8, seed=5)
        rgba = kernel.rgba.astype(int)
        expected = (66 * rgba[:, 0] + 129 * rgba[:, 1] + 25 * rgba[:, 2]) >> 8
        assert kernel.reference().tolist() == expected.tolist()

    def test_grey_pixels(self):
        kernel = ColorSpaceKernel(pixels=4)
        kernel.rgba = np.full((4, 4), 128, dtype=np.uint8)
        _, out = kernel.run_mmx()
        # (66+129+25)*128 >> 8 = 110
        assert out.tolist() == [110] * 4

    def test_config_a_beats_config_d(self):
        speed_d = ColorSpaceKernel(config=CONFIG_D).compare().speedup
        speed_a = ColorSpaceKernel(config=CONFIG_A).compare().speedup
        assert speed_a > speed_d > 1.0

    def test_parameter_guards(self):
        with pytest.raises(KernelError):
            ColorSpaceKernel(pixels=3)


class TestRegistry:
    def test_extension_kernels_registered(self):
        assert set(EXTENSION_KERNELS) == {
            "SAD", "ColorSpace", "MatrixVector", "IDCT", "Viterbi",
        }
        assert set(EXTENSION_KERNELS) <= set(ALL_KERNELS)

    def test_make_kernel(self):
        assert isinstance(make_kernel("SAD"), SADKernel)
        assert isinstance(make_kernel("ColorSpace"), ColorSpaceKernel)

"""Correctness and shape tests for the eight paper kernels + dot product.

Every kernel's MMX-only and MMX+SPU variants must match the NumPy
fixed-point mirror bit-exactly; the comparisons must reproduce the paper's
qualitative claims (who gains, who doesn't).
"""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.kernels import (
    ALL_KERNELS,
    TABLE2_KERNELS,
    DCTKernel,
    DotProductKernel,
    FFT128Kernel,
    FIR12Kernel,
    FIR22Kernel,
    FIRKernel,
    IIRKernel,
    MatMulKernel,
    TransposeKernel,
    dct_matrix_q12,
    make_kernel,
)

#: Fast kernel set for per-test verification (FFT1024 is bench-only here).
FAST_KERNELS = [
    DotProductKernel,
    TransposeKernel,
    FIR12Kernel,
    FIR22Kernel,
    MatMulKernel,
    DCTKernel,
    IIRKernel,
    FFT128Kernel,
]


@pytest.fixture(scope="module")
def comparisons():
    """Verify and compare each fast kernel once (cached per module)."""
    results = {}
    for cls in FAST_KERNELS:
        kernel = cls()
        kernel.verify()
        results[kernel.name] = kernel.compare()
    return results


class TestCorrectness:
    @pytest.mark.parametrize("cls", FAST_KERNELS)
    def test_both_variants_match_reference(self, cls):
        cls().verify()  # raises KernelError on any mismatch

    @pytest.mark.parametrize("cls", FAST_KERNELS)
    def test_seed_changes_data(self, cls):
        a, b = cls(seed=1), cls(seed=2)
        assert not np.array_equal(a.reference(), b.reference())

    @pytest.mark.parametrize("cls", FAST_KERNELS)
    def test_deterministic(self, cls):
        assert np.array_equal(cls(seed=9).reference(), cls(seed=9).reference())


class TestSpeedupShape:
    """Figure 9's qualitative content (§5.2.2-§5.2.4)."""

    def test_spu_never_slower(self, comparisons):
        for name, comparison in comparisons.items():
            assert comparison.speedup >= 0.999, name

    def test_inter_word_kernels_gain_most(self, comparisons):
        """DCT / matrix kernels benefit most (inter-word restrictions)."""
        inter_word = min(
            comparisons[name].speedup
            for name in ("DCT", "MatrixMultiply", "MatrixTranspose")
        )
        low_utilization = max(
            comparisons[name].speedup for name in ("IIR", "FFT128")
        )
        assert inter_word > low_utilization

    def test_fir_gains_modestly(self, comparisons):
        """Coefficient replication leaves FIR only a small SPU win (§5.2.2)."""
        assert 1.0 < comparisons["FIR12"].speedup < 1.15

    def test_iir_and_fft_barely_move(self, comparisons):
        """'The SPU obviously does not impact the performance' (§5.2.2)."""
        for name in ("IIR", "FFT128"):
            assert comparisons[name].speedup < 1.05, name

    def test_iir_fft_low_mmx_utilization(self, comparisons):
        for name in ("IIR", "FFT128"):
            assert comparisons[name].mmx.mmx_busy_fraction < 0.2, name

    def test_compute_kernels_high_mmx_utilization(self, comparisons):
        for name in ("FIR12", "DCT", "MatrixMultiply", "MatrixTranspose"):
            assert comparisons[name].mmx.mmx_busy_fraction > 0.5, name

    def test_permutes_offloaded(self, comparisons):
        for name in ("DotProduct", "MatrixTranspose", "DCT", "MatrixMultiply", "FIR12"):
            assert comparisons[name].removed_permutes > 0, name

    def test_spu_executes_fewer_instructions(self, comparisons):
        for name, comparison in comparisons.items():
            if comparison.removed_permutes:
                assert comparison.instructions_saved > 0, name

    def test_transpose_is_permute_heaviest(self, comparisons):
        """Inter-word restrictions dominate the transpose (§2.2)."""
        mmx = comparisons["MatrixTranspose"].mmx
        fir = comparisons["FIR12"].mmx
        assert (
            mmx.alignment_candidates / mmx.mmx_instructions
            > fir.alignment_candidates / fir.mmx_instructions
        )

    def test_iir_mmx_is_mostly_permutes(self, comparisons):
        """Table 3: IIR's MMX usage is dominated by pack/unpack conversion."""
        mmx = comparisons["IIR"].mmx
        assert mmx.alignment_candidates / mmx.mmx_instructions > 0.3


class TestBranchBehaviour:
    def test_media_kernels_mispredict_only_loop_exits(self, comparisons):
        """Table 2's ~0% mispredict rates: counted loops miss only at exit.

        (The paper's rates are tiny because its runs iterate millions of
        times; at our workload sizes the invariant is the absolute count —
        roughly one mispredict per loop in the kernel.)
        """
        for name, comparison in comparisons.items():
            assert comparison.mmx.mispredicts <= 5, name

    def test_mispredict_rate_vanishes_with_iterations(self):
        small = DotProductKernel(blocks=8)
        large = DotProductKernel(blocks=512)
        rate_small = small.run_mmx()[0].mispredict_rate
        rate_large = large.run_mmx()[0].mispredict_rate
        assert rate_large < rate_small
        assert rate_large < 0.005  # Table 2 territory

    def test_branches_track_loop_structure(self):
        kernel = DotProductKernel(blocks=10)
        stats, _ = kernel.run_mmx()
        assert stats.branches == 10


class TestWorkloadParameters:
    def test_table2_registry_complete(self):
        assert list(TABLE2_KERNELS) == [
            "FIR12", "FIR22", "IIR", "FFT1024", "FFT128",
            "DCT", "MatrixMultiply", "MatrixTranspose",
        ]

    def test_make_kernel(self):
        assert make_kernel("FIR12").taps == 12
        assert make_kernel("FFT128").n == 128
        with pytest.raises(KernelError):
            make_kernel("Sobel")

    def test_fir_defaults_match_table2(self):
        assert FIR12Kernel().taps == 12
        assert FIR22Kernel().taps == 22
        assert FIR12Kernel().samples >= 150

    def test_iir_defaults(self):
        kernel = IIRKernel()
        assert kernel.taps == 10 and kernel.samples >= 150

    def test_matrix_defaults(self):
        assert MatMulKernel().n == 16
        assert TransposeKernel().n == 16

    def test_invalid_parameters_rejected(self):
        with pytest.raises(KernelError):
            TransposeKernel(n=6)
        with pytest.raises(KernelError):
            FIRKernel(taps=1)
        with pytest.raises(KernelError):
            FIRKernel(taps=8, samples=7)
        with pytest.raises(KernelError):
            IIRKernel(samples=5)
        from repro.kernels import FFTKernel
        with pytest.raises(KernelError):
            FFTKernel(n=96)


class TestReferenceModels:
    def test_dct_matrix_is_orthogonalish(self):
        c = dct_matrix_q12().astype(np.float64) / (1 << 12)
        identity = c @ c.T
        assert np.allclose(identity, np.eye(8), atol=0.01)

    def test_dct_against_float_dct(self):
        """The fixed-point DCT tracks the real DCT within quantization."""
        kernel = DCTKernel(blocks=2)
        from scipy.fft import dctn
        for index in range(kernel.blocks):
            expected = dctn(kernel.block[index].astype(np.float64), norm="ortho")
            got = kernel.reference()[index].astype(np.float64)
            assert np.max(np.abs(got - expected)) < 8.0

    def test_dct_block_capacity_guard(self):
        with pytest.raises(KernelError):
            DCTKernel(blocks=9)
        with pytest.raises(KernelError):
            DCTKernel(blocks=0)

    def test_fir_matches_float_convolution(self):
        kernel = FIR12Kernel()
        x = kernel.x.astype(np.float64)
        taps = kernel.coeffs.astype(np.float64)
        full = np.convolve(x, taps)[: kernel.samples]
        expected = np.clip(full / (1 << 12), -32768, 32767)  # packssdw saturates
        got = kernel.reference().astype(np.float64)
        assert np.max(np.abs(got - expected)) <= 1.0  # truncation only

    def test_fft_tracks_float_fft(self):
        kernel = FFT128Kernel()
        ref = kernel.reference()
        got = ref[0::2].astype(np.float64) + 1j * ref[1::2].astype(np.float64)
        # hardware scales by 1/2 per stage → overall 1/N
        expected = np.fft.fft(kernel.x.astype(np.float64)) / kernel.n
        error = np.abs(got - expected)
        # Floor-truncation bias accumulates ~1 LSB per stage of the chain.
        assert np.max(error) < 64.0

    def test_matmul_small_case(self):
        kernel = MatMulKernel(n=4, seed=5)
        kernel.verify()

    def test_transpose_reference_is_transpose(self):
        kernel = TransposeKernel(n=8)
        assert np.array_equal(kernel.reference(), kernel.matrix.T)

    def test_iir_impulse_response_decays(self):
        """Stability bound: the feedback design keeps outputs bounded."""
        kernel = IIRKernel()
        out = kernel.reference().astype(np.float64)
        assert np.all(np.abs(out) <= 32767)


class TestVariantSizes:
    def test_transpose_variants(self):
        for n in (4, 8, 12):
            TransposeKernel(n=n).verify()

    def test_fir_variant_taps(self):
        for taps in (4, 8, 16):
            FIRKernel(taps=taps, samples=16).verify()

    def test_fft_small(self):
        from repro.kernels import FFTKernel
        for n in (4, 8, 16):
            FFTKernel(n=n).verify()

    def test_dotprod_blocks(self):
        DotProductKernel(blocks=3).verify()

"""Tests for the matrix-vector and inverse-DCT extension kernels."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.core import CONFIG_A, CONFIG_D
from repro.kernels import (
    ALL_KERNELS,
    DCTKernel,
    IDCTKernel,
    MatVecKernel,
    make_kernel,
    roundtrip_error,
)


class TestMatVec:
    def test_bit_exact_both_variants(self):
        MatVecKernel().verify()

    def test_reference_is_matvec(self):
        kernel = MatVecKernel(n=4, seed=3)
        expected = (kernel.a.astype(np.int64) @ kernel.x.astype(np.int64)) >> 12
        assert kernel.reference().tolist() == np.clip(
            expected, -32768, 32767
        ).astype(np.int16).tolist()

    def test_identity_matrix(self):
        kernel = MatVecKernel(n=8)
        kernel.a = (np.eye(8, dtype=np.int16) * (1 << 12)).astype(np.int16)
        _, out = kernel.run_mmx()
        assert out.tolist() == kernel.x.tolist()

    def test_spu_gains(self):
        comparison = MatVecKernel().compare()
        assert comparison.speedup > 1.0
        assert comparison.removed_permutes > 0

    def test_sizes(self):
        for n in (4, 8, 12):
            MatVecKernel(n=n).verify()
        with pytest.raises(KernelError):
            MatVecKernel(n=6)

    def test_registered(self):
        assert isinstance(make_kernel("MatrixVector"), MatVecKernel)


class TestIDCT:
    def test_bit_exact_both_variants(self):
        IDCTKernel().verify()

    def test_coefficient_matrix_is_transpose(self):
        from repro.kernels import dct_matrix_q12
        assert np.array_equal(IDCTKernel().cos, dct_matrix_q12().T)

    def test_spu_treatment_matches_dct(self):
        """Same four-phase structure, same SPU benefit as the forward DCT."""
        forward = DCTKernel().compare()
        inverse = IDCTKernel().compare()
        assert inverse.removed_permutes == forward.removed_permutes
        assert inverse.speedup == pytest.approx(forward.speedup, rel=0.05)

    def test_dct_idct_roundtrip(self):
        """Decoder recovers the encoder's input within a few LSBs."""
        assert roundtrip_error(blocks=4) <= 8.0

    def test_roundtrip_on_hardware(self):
        """Full loop through the *simulated* kernels, not just the mirrors."""
        forward = DCTKernel(blocks=2, seed=5)
        _, coefficients = forward.run_spu()
        inverse = IDCTKernel(blocks=2, seed=5)
        inverse.block = coefficients
        _, recovered = inverse.run_spu()
        error = np.max(np.abs(recovered.astype(np.int64)
                              - forward.block.astype(np.int64)))
        assert error <= 8

    def test_registered(self):
        assert isinstance(make_kernel("IDCT"), IDCTKernel)
        assert "IDCT" in ALL_KERNELS and "MatrixVector" in ALL_KERNELS

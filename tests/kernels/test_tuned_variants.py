"""Tests for hand-tuned SPU variants (§5.2.2's lower-estimate remark)."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.kernels import DotProductKernel, FIR12Kernel, FIR22Kernel, MatMulKernel


class TestTunedFIR:
    @pytest.mark.parametrize("cls", [FIR12Kernel, FIR22Kernel])
    def test_bit_exact(self, cls):
        kernel = cls()
        _, output = kernel.run_spu_tuned()
        assert np.array_equal(output, kernel.reference())

    def test_tuned_beats_automatic_offload(self):
        kernel = FIR12Kernel()
        comparison = kernel.compare()
        tuned, _ = kernel.run_spu_tuned()
        assert tuned.cycles < comparison.spu.cycles < comparison.mmx.cycles

    def test_tuned_reaches_paper_fir_number(self):
        """The paper measures 'a small eight percent' for FIR (§5.2.2)."""
        kernel = FIR12Kernel()
        mmx, _ = kernel.run_mmx()
        tuned, _ = kernel.run_spu_tuned()
        assert 1.05 < mmx.cycles / tuned.cycles < 1.12

    def test_tuned_has_fewer_instructions(self):
        kernel = FIR12Kernel()
        mmx, _ = kernel.run_mmx()
        tuned, _ = kernel.run_spu_tuned()
        # two removed instructions per phase, four phases per block
        assert mmx.instructions - tuned.instructions == 8 * kernel.blocks

    def test_no_alignment_instructions_in_reductions(self):
        kernel = FIR12Kernel()
        tuned, _ = kernel.run_spu_tuned()
        mmx, _ = kernel.run_mmx()
        assert tuned.alignment_candidates < mmx.alignment_candidates


class TestTunedMatMul:
    def test_bit_exact(self):
        kernel = MatMulKernel()
        _, output = kernel.run_spu_tuned()
        assert np.array_equal(output, kernel.reference())

    def test_beats_automatic_offload(self):
        kernel = MatMulKernel()
        comparison = kernel.compare()
        tuned, _ = kernel.run_spu_tuned()
        assert tuned.cycles < comparison.spu.cycles < comparison.mmx.cycles

    def test_lands_in_paper_window(self):
        kernel = MatMulKernel()
        mmx, _ = kernel.run_mmx()
        tuned, _ = kernel.run_spu_tuned()
        assert 1.04 < mmx.cycles / tuned.cycles < 1.20


class TestTunedAPI:
    def test_kernels_without_tuned_variant_raise(self):
        with pytest.raises(KernelError):
            DotProductKernel().run_spu_tuned()

    def test_default_build_spu_tuned_is_none(self):
        assert DotProductKernel().build_spu_tuned() is None

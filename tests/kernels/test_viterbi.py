"""Tests for the Viterbi ACS extension kernel."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.core import CONFIG_D
from repro.kernels import ViterbiKernel, convolutional_encode, make_kernel


def flushed(nbits=64, seed=5, symbol_errors=0):
    """A kernel whose transmitted path ends in state 0 (two flush zeros)."""
    kernel = ViterbiKernel(nbits=nbits, seed=seed)
    kernel.tx_bits[-2:] = 0
    symbols = convolutional_encode(kernel.tx_bits)
    rng = np.random.default_rng(seed + 1)
    noisy = symbols.copy()
    if symbol_errors:
        for index in rng.choice(nbits - 4, symbol_errors, replace=False):
            noisy[index] ^= 1 << int(rng.integers(0, 2))
    kernel.rx_symbols = noisy
    return kernel


class TestEncoder:
    def test_known_sequence(self):
        # G = (7,5): all-ones input from state 0 -> 11, 01, 10, 10 ...
        symbols = convolutional_encode(np.array([1, 1, 1, 1], dtype=np.uint8))
        assert symbols[0] == 0b11
        assert len(symbols) == 4

    def test_zero_input_zero_output(self):
        assert convolutional_encode(np.zeros(8, dtype=np.uint8)).tolist() == [0] * 8


class TestCorrectness:
    def test_bit_exact_both_variants(self):
        ViterbiKernel().verify()

    def test_noiseless_decode_recovers_bits(self):
        kernel = flushed(symbol_errors=0)
        assert np.array_equal(kernel.decoded_bits(), kernel.tx_bits)

    def test_corrects_channel_errors(self):
        """Three scattered symbol errors are within the code's reach."""
        kernel = flushed(symbol_errors=3)
        assert np.array_equal(kernel.decoded_bits(), kernel.tx_bits)

    def test_hardware_decode_matches_mirror(self):
        kernel = flushed(symbol_errors=2)
        _, output = kernel.run_spu()
        assert np.array_equal(output, kernel.reference())

    def test_workload_guards(self):
        with pytest.raises(KernelError):
            ViterbiKernel(nbits=2)
        with pytest.raises(KernelError):
            ViterbiKernel(nbits=500)  # metrics would saturate


class TestSPUShape:
    def test_shuffles_offloaded(self):
        kernel = ViterbiKernel()
        comparison = kernel.compare()
        assert comparison.removed_permutes >= 3  # two pshufw + a copy
        assert comparison.speedup > 1.05

    def test_metrics_register_live_out_kept(self):
        # mm0 carries metrics across iterations and into the epilogue store:
        # the final `movq mm0, mm1` restore must never be removed.
        kernel = ViterbiKernel()
        program, _ = kernel.spu_programs()
        acs = [str(i) for i in program]
        assert any("movq mm0, mm1" in line for line in acs)

    def test_traceback_dilutes_mmx(self):
        stats, _ = ViterbiKernel().run_mmx()
        assert stats.mmx_busy_fraction < 0.6  # scalar traceback is real work

    def test_registered(self):
        assert isinstance(make_kernel("Viterbi"), ViterbiKernel)

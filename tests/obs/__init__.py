"""Tests for the repro.obs telemetry layer."""

"""Cycle attribution: every simulated cycle lands in exactly one category."""

import pytest

from repro.cpu import Bimodal, Machine, PipelineConfig
from repro.isa import assemble
from repro.kernels import make_kernel
from repro.obs import CATEGORIES, CycleAttribution


def attributed_run(source, **kwargs):
    machine = Machine(assemble(source), **kwargs)
    timeline = CycleAttribution().attach(machine)
    stats = machine.run()
    return stats, timeline


def assert_consistent(stats, timeline):
    """The central invariant: categories partition RunStats.cycles."""
    assert stats.attributed_cycles == stats.cycles
    assert sum(stats.attribution().values()) == stats.cycles
    assert timeline.totals() == stats.attribution()
    assert timeline.total_cycles() == stats.cycles
    # The timeline is an ordered, non-overlapping partition.
    position = 0
    for segment in timeline.segments:
        assert segment.category in CATEGORIES
        assert segment.length > 0
        assert segment.start >= position
        position = segment.end
    assert position <= stats.cycles


class TestSmallPrograms:
    def test_solo_only(self):
        stats, timeline = attributed_run("nop\nnop\nhalt")
        assert_consistent(stats, timeline)
        assert timeline.totals()["solo_issue"] == stats.cycles

    def test_pairing_cycles(self):
        stats, timeline = attributed_run("paddw mm0, mm1\npsubw mm2, mm3\nhalt")
        assert_consistent(stats, timeline)
        assert timeline.totals()["pair_issue"] == stats.pair_cycles == 1

    def test_data_stall_cycles(self):
        stats, timeline = attributed_run("pmullw mm0, mm1\npaddw mm2, mm0\nhalt")
        assert_consistent(stats, timeline)
        assert timeline.totals()["data_stall"] == stats.stall_cycles == 2

    def test_mispredict_bubbles(self):
        stats, timeline = attributed_run(
            "mov r0, 100\ntop: nop\nloop r0, top\nhalt", predictor=Bimodal()
        )
        assert_consistent(stats, timeline)
        assert stats.mispredicts == 1
        assert timeline.totals()["mispredict_bubble"] == stats.mispredict_cycles > 0

    def test_extra_stage_charges_drain(self):
        stats, timeline = attributed_run(
            "nop\nhalt", config=PipelineConfig(extra_stage=True)
        )
        assert_consistent(stats, timeline)
        assert stats.drain_cycles == 1
        assert timeline.segments[0].category == "drain"

    def test_no_extra_stage_no_drain(self):
        stats, timeline = attributed_run("nop\nhalt")
        assert stats.drain_cycles == 0
        assert timeline.totals()["drain"] == 0

    def test_reattached_run_resets_timeline(self):
        machine = Machine(assemble("nop\nnop\nhalt"))
        timeline = CycleAttribution().attach(machine)
        machine.run()
        machine.reset()
        stats = machine.run()
        assert_consistent(stats, timeline)

    def test_detach_stops_recording(self):
        machine = Machine(assemble("nop\nnop\nhalt"))
        timeline = CycleAttribution().attach(machine)
        timeline.detach()
        machine.run()
        assert timeline.segments == []


class TestTruncation:
    def test_overflow_preserves_totals(self):
        source = "mov r0, 40\ntop: pmullw mm0, mm1\npaddw mm2, mm0\nloop r0, top\nhalt"
        machine = Machine(assemble(source))
        timeline = CycleAttribution(max_segments=4).attach(machine)
        stats = machine.run()
        assert timeline.truncated
        assert len(timeline.segments) == 4
        assert timeline.totals() == stats.attribution()
        assert timeline.total_cycles() == stats.cycles

    def test_as_dict_reports_truncation(self):
        machine = Machine(assemble("nop\n" * 10 + "halt"))
        timeline = CycleAttribution(max_segments=1).attach(machine)
        machine.run()
        data = timeline.as_dict()
        assert data["total_cycles"] == sum(data["totals"].values())
        # nop runs merge, so one segment may suffice; totals must still agree.
        assert set(data["totals"]) == set(CATEGORIES)


@pytest.mark.parametrize("name", ["DotProduct", "MatrixTranspose", "FIR12"])
@pytest.mark.parametrize("variant", ["mmx", "spu"])
class TestKernelInvariant:
    def test_attribution_partitions_cycles(self, name, variant):
        machine = make_kernel(name).machine(variant)
        timeline = CycleAttribution().attach(machine)
        stats = machine.run()
        assert_consistent(stats, timeline)
        if variant == "spu":
            assert stats.drain_cycles == 1  # the extra interconnect stage

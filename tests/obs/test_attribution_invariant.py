"""Cycle-attribution invariant under adversity.

The observability contract: the per-stage cycle attribution
(:class:`RunStats.attribution`) and the per-trace attribution
(:class:`TraceProfiler`) each sum exactly to ``RunStats.cycles`` — and
attaching the tracer never changes the run.  This must hold not just on
clean runs but across the full matrix the campaign exercises: degrade-mode
fault injection on and off, SWAR and NumPy-reference SIMD backends, trace
profiler attached and detached.
"""

import pytest

from repro.faults import FaultInjector, FaultSpec
from repro.kernels import make_kernel
from repro.obs import TraceProfiler
from repro.simd import use_backend

BACKENDS = ("swar", "reference")

#: Fires mid-loop and corrupts a routed byte; degrade mode absorbs it and
#: the run completes (the classic masked/silent quadrant of the campaign).
DEGRADE_SPEC = dict(kind="register_bit", trigger=5, byte=1, bit=0)


def run_matrix_cell(backend: str, faulty: bool, traced: bool):
    """One (backend, fault, tracer) cell; returns (stats, profiler|None)."""
    kernel = make_kernel("DotProduct")
    machine = kernel.machine("spu", resilience="degrade")
    injector = None
    if faulty:
        spec = FaultSpec(DEGRADE_SPEC["kind"], trigger=DEGRADE_SPEC["trigger"],
                         byte=DEGRADE_SPEC["byte"], bit=DEGRADE_SPEC["bit"])
        injector = FaultInjector(machine, spec)
    profiler = TraceProfiler().attach(machine) if traced else None
    try:
        with use_backend(backend):
            stats = machine.run()
    finally:
        if profiler is not None:
            profiler.detach()
        if injector is not None:
            injector.detach()
    if faulty:
        assert injector.fired
    return stats, profiler


class TestAttributionInvariant:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("faulty", (False, True))
    def test_stage_attribution_sums_to_cycles(self, backend, faulty):
        stats, _ = run_matrix_cell(backend, faulty, traced=False)
        assert stats.attributed_cycles == stats.cycles

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("faulty", (False, True))
    def test_trace_attribution_sums_to_cycles(self, backend, faulty):
        stats, profiler = run_matrix_cell(backend, faulty, traced=True)
        assert profiler.attributed_cycles() == stats.cycles
        assert profiler.total_instructions == stats.instructions
        assert stats.attributed_cycles == stats.cycles

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("faulty", (False, True))
    def test_tracer_is_observationally_transparent(self, backend, faulty):
        bare, _ = run_matrix_cell(backend, faulty, traced=False)
        traced, _ = run_matrix_cell(backend, faulty, traced=True)
        assert traced.cycles == bare.cycles
        assert traced.instructions == bare.instructions
        assert traced.stall_cycles == bare.stall_cycles
        assert traced.mispredict_cycles == bare.mispredict_cycles

    def test_backends_agree_on_timing(self):
        """The SIMD backend is a data-path swap; timing must not move."""
        swar, _ = run_matrix_cell("swar", faulty=True, traced=True)
        reference, _ = run_matrix_cell("reference", faulty=True, traced=True)
        assert swar.cycles == reference.cycles
        assert swar.instructions == reference.instructions

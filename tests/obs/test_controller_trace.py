"""SPU controller tracing: occupancy, transitions and loop counters."""

import pytest

from repro.kernels import make_kernel
from repro.obs import ControllerTrace


@pytest.fixture(scope="module")
def traced_dotprod():
    machine = make_kernel("DotProduct").machine("spu")
    trace = ControllerTrace().attach(machine)
    stats = machine.run()
    return machine, trace, stats


class TestControllerTrace:
    def test_steps_once_per_active_instruction(self, traced_dotprod):
        machine, trace, stats = traced_dotprod
        assert 0 < trace.steps <= trace.issues == stats.instructions
        assert 0.0 < trace.go_occupancy <= 1.0
        assert sum(trace.steps_by_context.values()) == trace.steps

    def test_occupancy_and_transitions_account_every_step(self, traced_dotprod):
        _, trace, _ = traced_dotprod
        assert sum(trace.state_occupancy.values()) == trace.steps
        assert sum(trace.transitions.values()) == trace.steps

    def test_routed_instructions_match_stats(self, traced_dotprod):
        _, trace, stats = traced_dotprod
        assert trace.routed_instructions == stats.spu_routed > 0
        assert trace.routed_steps >= trace.routed_instructions > 0
        assert sum(trace.routed_slots.values()) >= trace.routed_instructions

    def test_controller_goes_idle_after_each_loop(self, traced_dotprod):
        machine, trace, _ = traced_dotprod
        assert trace.idle_entries >= 1
        assert trace.idle_entries == machine.spu.controller.stats.activations

    def test_counter_log_records_countdown(self, traced_dotprod):
        _, trace, _ = traced_dotprod
        assert trace.counter_log
        assert all(len(entry) == 3 for entry in trace.counter_log)
        # CNTR0 must actually move (zero-overhead looping, §4).
        values = {cntr0 for _, cntr0, _ in trace.counter_log}
        assert len(values) > 1

    def test_hottest_states(self, traced_dotprod):
        _, trace, _ = traced_dotprod
        hottest = trace.hottest_states(2)
        assert hottest == trace.state_occupancy.most_common(2)

    def test_as_dict_is_json_shaped(self, traced_dotprod):
        import json

        _, trace, _ = traced_dotprod
        data = trace.as_dict()
        json.dumps(data)  # string keys throughout
        assert data["steps"] == trace.steps
        assert all("->" in key for key in data["transitions"])
        assert data["num_states"] == 128
        assert data["activations"] >= 1

    def test_detach(self):
        machine = make_kernel("DotProduct").machine("spu")
        trace = ControllerTrace().attach(machine)
        trace.detach()
        machine.run()
        assert trace.steps == 0 and trace.issues == 0

    def test_counter_log_cap(self):
        machine = make_kernel("DotProduct").machine("spu")
        trace = ControllerTrace(counter_log_limit=3).attach(machine)
        machine.run()
        assert len(trace.counter_log) == 3
        assert trace.as_dict()["counter_log_truncated"]

    def test_mmx_variant_sees_no_controller_steps(self):
        machine = make_kernel("DotProduct").machine("mmx")
        trace = ControllerTrace().attach(machine)
        stats = machine.run()
        assert trace.steps == 0
        assert trace.issues == stats.instructions
        assert trace.go_occupancy == 0.0

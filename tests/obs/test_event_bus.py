"""Event-bus semantics: fan-out, isolation, mid-run (un)subscription."""

import pytest

from repro.cpu import Machine, trace_run
from repro.isa import assemble
from repro.obs import (
    EventBus,
    IssueEvent,
    RunEndEvent,
    RunStartEvent,
    SubscriberError,
    TOPICS,
)


def machine_of(source, **kwargs):
    return Machine(assemble(source), **kwargs)


LOOP = "mov r0, 5\ntop: paddw mm0, mm1\nloop r0, top\nhalt"


class TestBusUnit:
    def test_unknown_topic_rejected(self):
        bus = EventBus()
        with pytest.raises(ValueError, match="unknown topic"):
            bus.subscribe("retired", lambda event: None)

    def test_unsubscribe_callable_is_idempotent(self):
        bus = EventBus()
        unsubscribe = bus.subscribe("issue", lambda event: None)
        assert bus.has_subscribers("issue")
        unsubscribe()
        unsubscribe()
        assert not bus.has_subscribers()

    def test_clear_drops_all_topics(self):
        bus = EventBus()
        for topic in TOPICS:
            bus.subscribe(topic, lambda event: None)
        bus.clear()
        assert not bus.has_subscribers()

    def test_dispatch_order_is_subscription_order(self):
        bus = EventBus()
        order = []
        bus.subscribe("issue", lambda event: order.append("first"))
        bus.subscribe("issue", lambda event: order.append("second"))
        bus.dispatch("issue", object())
        assert order == ["first", "second"]

    def test_raising_subscriber_is_recorded_and_dropped(self):
        bus = EventBus()
        seen = []

        def bad(event):
            raise RuntimeError("observer bug")

        bus.subscribe("issue", bad)
        bus.subscribe("issue", seen.append)
        bus.dispatch("issue", "a")
        bus.dispatch("issue", "b")
        assert seen == ["a", "b"]
        assert len(bus.errors) == 1
        error = bus.errors[0]
        assert isinstance(error, SubscriberError)
        assert error.topic == "issue" and error.subscriber is bad
        assert isinstance(error.error, RuntimeError)
        assert bus.subscribers("issue") == [seen.append]

    def test_unsubscribe_during_dispatch_is_safe(self):
        bus = EventBus()
        seen = []
        unsubscribes = []

        def one_shot(event):
            seen.append(event)
            unsubscribes[0]()

        unsubscribes.append(bus.subscribe("issue", one_shot))
        bus.subscribe("issue", lambda event: seen.append(("other", event)))
        bus.dispatch("issue", 1)
        bus.dispatch("issue", 2)
        assert seen == [1, ("other", 1), ("other", 2)]


class TestBusOnMachine:
    def test_multiple_subscribers_see_the_same_run(self):
        machine = machine_of(LOOP)
        first, second = [], []
        machine.bus.subscribe("issue", first.append)
        machine.bus.subscribe("issue", second.append)
        stats = machine.run()
        assert len(first) == stats.instructions
        assert first == second
        assert all(isinstance(event, IssueEvent) for event in first)

    def test_run_start_and_end_events(self):
        machine = machine_of(LOOP)
        lifecycle = []
        machine.bus.subscribe("run_start", lifecycle.append)
        machine.bus.subscribe("run_end", lifecycle.append)
        stats = machine.run()
        assert isinstance(lifecycle[0], RunStartEvent)
        assert isinstance(lifecycle[-1], RunEndEvent)
        assert lifecycle[-1].cycles == stats.cycles
        assert lifecycle[-1].finished

    def test_stall_and_branch_topics_fire(self):
        stall_machine = machine_of("pmullw mm0, mm1\npaddw mm2, mm0\nhalt")
        stalls = []
        stall_machine.bus.subscribe("stall", stalls.append)
        stats = stall_machine.run()
        assert sum(event.cycles for event in stalls) == stats.stall_cycles == 2

        branch_machine = machine_of(LOOP)
        branches = []
        branch_machine.bus.subscribe("branch", branches.append)
        stats = branch_machine.run()
        assert len(branches) == stats.branches
        assert sum(event.penalty for event in branches) == stats.mispredict_cycles

    def test_raising_subscriber_does_not_corrupt_the_run(self):
        baseline = machine_of(LOOP).run()
        machine = machine_of(LOOP)

        def bomb(event):
            raise ValueError("boom")

        machine.bus.subscribe("issue", bomb)
        stats = machine.run()
        assert stats.cycles == baseline.cycles
        assert stats.instructions == baseline.instructions
        assert machine.bus.errors and machine.bus.errors[0].subscriber is bomb
        assert not machine.bus.has_subscribers("issue")

    def test_subscriber_can_unsubscribe_mid_run(self):
        machine = machine_of(LOOP)
        seen = []
        unsubscribes = []

        def two_then_done(event):
            seen.append(event)
            if len(seen) == 2:
                unsubscribes[0]()

        unsubscribes.append(machine.bus.subscribe("issue", two_then_done))
        stats = machine.run()
        assert len(seen) == 2
        assert stats.instructions > 2

    def test_profile_and_trace_observe_one_run(self):
        """The original single-slot hook's failure mode, now supported."""
        from repro.analysis import profile

        machine = machine_of(LOOP)
        issues = []
        machine.bus.subscribe("issue", issues.append)
        trace = trace_run(machine)
        assert len(trace) == len(issues) == trace.stats.instructions
        # And the profiler path still works independently on a fresh machine.
        prof = profile(machine_of(LOOP))
        assert prof.total == trace.stats.instructions


class TestOnIssueRemoved:
    def test_legacy_hook_is_gone(self):
        """The deprecated single-slot shim was removed; the bus is the API."""
        machine = machine_of(LOOP)
        assert not hasattr(type(machine), "on_issue")

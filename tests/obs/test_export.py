"""Exporters: envelope, JSON/JSONL writers, name resolution, metrics."""

import json

import pytest

from repro.errors import KernelError
from repro.kernels import make_kernel
from repro.obs import (
    SCHEMA_VERSION,
    MetricsRegistry,
    envelope,
    kernel_profile_report,
    resolve_kernel_name,
    write_json,
    write_jsonl,
)


class TestEnvelope:
    def test_fields(self):
        document = envelope("metrics", {"a": 1})
        assert document == {"schema": SCHEMA_VERSION, "kind": "metrics",
                            "data": {"a": 1}}

    def test_extra_metadata(self):
        document = envelope("benchmark", {}, generator="pytest")
        assert document["generator"] == "pytest"
        assert list(document)[-1] == "data"


class TestWriters:
    def test_write_json_roundtrip(self, tmp_path):
        target = write_json(tmp_path / "nested" / "out.json", envelope("metrics", {"x": 2}))
        assert target is not None and target.exists()
        assert json.loads(target.read_text())["data"]["x"] == 2

    def test_write_json_stdout(self, capsys):
        assert write_json("-", {"k": 1}) is None
        assert json.loads(capsys.readouterr().out) == {"k": 1}

    def test_write_json_stringifies_unknown_types(self, tmp_path):
        target = write_json(tmp_path / "o.json", {"path": tmp_path})
        assert json.loads(target.read_text())["path"] == str(tmp_path)

    def test_write_jsonl_roundtrip(self, tmp_path):
        records = [{"seq": index} for index in range(3)]
        target = write_jsonl(tmp_path / "trace.jsonl", iter(records))
        lines = target.read_text().splitlines()
        assert [json.loads(line) for line in lines] == records

    def test_write_jsonl_stdout(self, capsys):
        assert write_jsonl("-", [{"a": 1}, {"b": 2}]) is None
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 2 and json.loads(lines[0]) == {"a": 1}


class TestKernelNameResolution:
    def test_exact(self):
        assert resolve_kernel_name("FIR12") == "FIR12"

    def test_casefold(self):
        assert resolve_kernel_name("fir12") == "FIR12"

    def test_unique_prefix(self):
        assert resolve_kernel_name("dotprod") == "DotProduct"
        assert resolve_kernel_name("matrixt") == "MatrixTranspose"

    def test_ambiguous_prefix_rejected(self):
        with pytest.raises(KernelError, match="ambiguous"):
            resolve_kernel_name("m")

    def test_unknown_rejected(self):
        with pytest.raises(KernelError, match="unknown kernel"):
            resolve_kernel_name("sobel")


class TestMetricsRegistry:
    def test_set_get_namespacing(self):
        registry = MetricsRegistry(namespace="bench")
        registry.set("speedup", 1.25, unit="x", help="MMX/SPU cycle ratio")
        assert registry.get("speedup") == 1.25
        assert "speedup" in registry
        assert registry.as_dict() == {"bench.speedup": 1.25}
        (record,) = registry.describe()
        assert record == {"name": "bench.speedup", "value": 1.25, "unit": "x",
                          "help": "MMX/SPU cycle ratio"}

    def test_inc(self):
        registry = MetricsRegistry()
        registry.inc("events")
        registry.inc("events", 4)
        assert registry.get("events") == 5

    def test_observe_stats_flattens_runstats(self):
        machine = make_kernel("DotProduct").machine("mmx")
        stats = machine.run()
        registry = MetricsRegistry()
        registry.observe_stats("dotprod.mmx", stats)
        flat = registry.as_dict()
        assert flat["dotprod.mmx.cycles"] == stats.cycles
        assert flat["dotprod.mmx.cycle_attribution.solo_issue"] == stats.solo_cycles
        assert all(not isinstance(value, dict) for value in flat.values())

    def test_len_and_iter(self):
        registry = MetricsRegistry()
        registry.set("a", 1)
        registry.set("b", 2)
        assert len(registry) == 2
        assert [metric.name for metric in registry] == ["a", "b"]


class TestSuiteMetrics:
    def test_suite_exports_comparisons(self):
        from repro.experiments import ExperimentSuite

        suite = ExperimentSuite(fast=True)
        suite.kernel_names = ("DotProduct",)
        registry = suite.metrics()
        flat = registry.as_dict()
        assert flat["suite.DotProduct.speedup"] > 1.0
        assert flat["suite.DotProduct.spu.cycles"] < flat["suite.DotProduct.mmx.cycles"]
        document = envelope("metrics", flat)
        json.dumps(document)


class TestKernelProfileReport:
    def test_report_schema_and_invariants(self):
        report = kernel_profile_report(make_kernel("DotProduct"))
        assert report["schema"] == SCHEMA_VERSION
        assert report["kind"] == "kernel-profile"
        body = report["data"]
        assert body["kernel"] == "DotProduct" and body["config"] == "D"
        for variant in ("mmx", "spu"):
            section = body["variants"][variant]
            attribution = section["cycle_attribution"]
            categories = {key: value for key, value in attribution.items()
                          if key in section["stats"]["cycle_attribution"]}
            assert sum(categories.values()) == attribution["total_cycles"]
            assert attribution["attributed_cycles"] == attribution["total_cycles"]
            assert attribution["timeline"]["totals"] == categories
        assert "controller" in body["variants"]["spu"]
        assert "controller" not in body["variants"]["mmx"]
        comparison = body["comparison"]
        assert comparison["speedup"] > 1.0
        assert comparison["removed_permutes"] > 0
        json.dumps(report)

    def test_single_variant_report_has_no_comparison(self):
        report = kernel_profile_report(make_kernel("DotProduct"), variants=("mmx",))
        assert "comparison" not in report["data"]
        assert list(report["data"]["variants"]) == ["mmx"]

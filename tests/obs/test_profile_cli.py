"""End-to-end: ``repro profile`` / ``repro trace`` and their JSON exports."""

import json

from repro.cli import main
from repro.obs import SCHEMA_VERSION, SCHEMA_VERSION_2


class TestProfileCommand:
    def test_json_document(self, capsys):
        assert main(["profile", "dotprod", "--json", "-"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == SCHEMA_VERSION
        assert document["kind"] == "kernel-profile"
        body = document["data"]
        assert body["kernel"] == "DotProduct"
        for variant in ("mmx", "spu"):
            section = body["variants"][variant]
            stats = section["stats"]
            # Acceptance invariant: the attribution sums to total cycles.
            assert sum(stats["cycle_attribution"].values()) == stats["cycles"]
            mix = section["instruction_mix"]
            assert mix["total"] == stats["instructions"]
            assert 0.0 < mix["mmx_fraction"] <= 1.0
        controller = body["variants"]["spu"]["controller"]
        assert controller["state_occupancy"]
        assert sum(controller["state_occupancy"].values()) == controller["steps"]
        assert body["comparison"]["speedup"] > 1.0

    def test_json_to_file(self, tmp_path, capsys):
        target = tmp_path / "profile.json"
        assert main(["profile", "DotProduct", "--json", str(target)]) == 0
        assert "wrote" in capsys.readouterr().out
        assert json.loads(target.read_text())["kind"] == "kernel-profile"

    def test_human_output(self, capsys):
        assert main(["profile", "dotprod"]) == 0
        out = capsys.readouterr().out
        assert "cycle attribution" in out
        assert "top opcodes" in out
        assert "SPU controller" in out
        assert "speedup" in out

    def test_single_variant(self, capsys):
        assert main(["profile", "dotprod", "--variant", "mmx", "--json", "-"]) == 0
        body = json.loads(capsys.readouterr().out)["data"]
        assert list(body["variants"]) == ["mmx"]
        assert "comparison" not in body

    def test_unknown_kernel(self, capsys):
        assert main(["profile", "sobel"]) == 2
        err = capsys.readouterr().err
        assert "unknown kernel" in err and "Traceback" not in err


class TestTraceCommand:
    def test_jsonl_stream(self, capsys):
        assert main(["trace", "dotprod", "--jsonl", "-"]) == 0
        lines = capsys.readouterr().out.splitlines()
        header, *records = [json.loads(line) for line in lines]
        # The stream self-describes: a leading trace-header record names
        # the schema, kernel, variant and config before any issue records.
        assert header["schema"] == SCHEMA_VERSION_2
        assert header["kind"] == "trace-header"
        assert header["kernel"] == "DotProduct"
        assert header["variant"] == "spu"
        assert header["config"] == "D"
        assert "seed" in header
        assert records, "trace must emit records"
        assert {"seq", "cycle", "pc", "pipe", "text", "is_mmx", "routed"} <= set(records[0])
        assert [record["seq"] for record in records] == list(range(len(records)))
        assert any(record["routed"] for record in records)
        assert all(record["pipe"] in ("U", "V") for record in records)
        cycles = [record["cycle"] for record in records]
        assert cycles == sorted(cycles)

    def test_jsonl_to_file(self, tmp_path, capsys):
        target = tmp_path / "trace.jsonl"
        assert main(["trace", "dotprod", "--jsonl", str(target)]) == 0
        assert "wrote" in capsys.readouterr().out
        assert target.read_text().strip()

    def test_text_listing(self, capsys):
        assert main(["trace", "dotprod", "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out and "SPU-routed" in out

    def test_mmx_variant_has_no_routes(self, capsys):
        assert main(["trace", "dotprod", "--variant", "mmx", "--jsonl", "-"]) == 0
        header, *records = [
            json.loads(line) for line in capsys.readouterr().out.splitlines()
        ]
        assert header["variant"] == "mmx"
        assert not any(record["routed"] for record in records)

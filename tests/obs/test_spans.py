"""Span tracer: hierarchy, OTLP records, abort semantics, determinism."""

import json

import pytest

from repro.obs import SCHEMA_VERSION_2, SpanTracer
from repro.obs.spans import maybe_span


def ticking_clock(start=1_000, step=10):
    """Deterministic nanosecond clock for pinned-timestamp assertions."""
    state = {"now": start - step}

    def clock():
        state["now"] += step
        return state["now"]

    return clock


class TestHierarchy:
    def test_children_inherit_the_root_trace(self):
        tracer = SpanTracer(clock=ticking_clock())
        root = tracer.begin("campaign:check")
        child = tracer.begin("slice:DotProduct", parent=root)
        grandchild = tracer.begin("task:clean", parent=child)
        assert child.trace_id == root.trace_id == grandchild.trace_id
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id
        assert root.parent_id is None

    def test_sequential_ids_are_deterministic(self):
        def ids():
            tracer = SpanTracer(clock=ticking_clock())
            a = tracer.begin("a")
            b = tracer.begin("b", parent=a)
            return a.span_id, b.span_id, a.trace_id

        assert ids() == ids()

    def test_out_of_order_completion(self):
        tracer = SpanTracer(clock=ticking_clock())
        root = tracer.begin("campaign")
        first = tracer.begin("task:1", parent=root)
        second = tracer.begin("task:2", parent=root)
        tracer.end(second)
        tracer.end(first)
        tracer.end(root)
        assert all(not span.open for span in tracer.spans)
        assert first.end_ns > second.end_ns

    def test_end_is_idempotent(self):
        tracer = SpanTracer(clock=ticking_clock())
        span = tracer.begin("once")
        tracer.end(span)
        end = span.end_ns
        tracer.end(span, status="error")
        assert span.end_ns == end and span.status == "ok"


class TestRecords:
    def test_otlp_shape_and_typed_attributes(self):
        tracer = SpanTracer(clock=ticking_clock())
        with tracer.span("task", kernel="SAD", index=3,
                         cached=False, share=0.5):
            pass
        (record,) = tracer.records()
        assert record["name"] == "task"
        assert record["status"] == {"code": "STATUS_CODE_OK"}
        assert record["startTimeUnixNano"] == "1000"
        assert record["endTimeUnixNano"] == "1010"
        values = {entry["key"]: entry["value"] for entry in record["attributes"]}
        assert values["kernel"] == {"stringValue": "SAD"}
        assert values["index"] == {"intValue": "3"}
        assert values["cached"] == {"boolValue": False}
        assert values["share"] == {"doubleValue": 0.5}

    def test_open_spans_export_aborted(self):
        tracer = SpanTracer(clock=ticking_clock())
        tracer.begin("campaign")  # never ended: simulated interrupt
        (record,) = tracer.records()
        assert record["status"] == {"code": "STATUS_CODE_ERROR"}
        assert int(record["endTimeUnixNano"]) > int(record["startTimeUnixNano"])

    def test_exception_marks_error_and_reraises(self):
        tracer = SpanTracer(clock=ticking_clock())
        with pytest.raises(RuntimeError):
            with tracer.span("task"):
                raise RuntimeError("boom")
        assert tracer.spans[0].status == "error"

    def test_write_jsonl_with_header(self, tmp_path):
        tracer = SpanTracer(clock=ticking_clock())
        with tracer.span("campaign") as root:
            with tracer.span("slice", parent=root):
                pass
        target = tracer.write(tmp_path / "spans.jsonl")
        header, *records = [
            json.loads(line) for line in target.read_text().splitlines()
        ]
        assert header == {"schema": SCHEMA_VERSION_2, "kind": "span-header",
                          "spans": 2}
        assert [r["name"] for r in records] == ["campaign", "slice"]


class TestMaybeSpan:
    def test_none_tracer_is_a_no_op(self):
        with maybe_span(None, "task") as span:
            assert span is None

    def test_with_tracer_delegates(self):
        tracer = SpanTracer(clock=ticking_clock())
        with maybe_span(tracer, "task", kernel="FIR12") as span:
            assert span is not None
        assert tracer.spans == [span] and not span.open

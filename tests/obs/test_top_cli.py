"""End-to-end: ``repro top``, campaign span export and uop-cache surfacing."""

import json

from repro.cli import main
from repro.obs import SCHEMA_VERSION_2


class TestTopCommand:
    def test_json_document(self, capsys):
        assert main(["top", "dotprod", "--json", "-"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == SCHEMA_VERSION_2
        assert document["kind"] == "trace-profile"
        body = document["data"]
        assert body["kernel"] == "DotProduct"
        for variant in ("mmx", "spu"):
            section = body["variants"][variant]
            # The per-trace cycles attribute the run exactly.
            assert section["attributed_cycles"] == section["cycles"]
            assert sum(t["cycles"] for t in section["traces"]) == section["cycles"]
            # The dominant trace is the kernel's labeled loop, and it is
            # fusible: stable schedule, exact loop pass, no sa-* blockers.
            top = section["traces"][0]
            assert top["label"] == "loop"
            assert top["fusion"]["fusible"] and not top["fusion"]["reasons"]
            assert top["stable"]
            assert section["summary"]["dominant_label"] == "loop"
            assert section["summary"]["fusible_traces"] >= 1
            assert 0.0 < section["summary"]["fusible_share"] <= 1.0
            uop = section["uop_cache"]
            assert uop["hits"] + uop["misses"] == section["instructions"]
            assert 0.0 < uop["hit_rate"] <= 1.0

    def test_json_is_byte_stable(self, capsys):
        assert main(["top", "SAD", "--json", "-"]) == 0
        first = capsys.readouterr().out
        assert main(["top", "SAD", "--json", "-"]) == 0
        assert capsys.readouterr().out == first

    def test_human_output(self, capsys):
        assert main(["top", "dotprod", "--variant", "spu"]) == 0
        out = capsys.readouterr().out
        assert "fusible" in out
        assert "uop cache" in out
        assert "loop" in out

    def test_unknown_kernel(self, capsys):
        assert main(["top", "sobel"]) == 2
        assert "unknown kernel" in capsys.readouterr().err


class TestCheckSpans:
    def test_serial_check_writes_span_tree(self, tmp_path, capsys):
        spans_path = tmp_path / "spans.jsonl"
        assert main(["check", "dotprod", "--faults", "2",
                     "--spans", str(spans_path)]) == 0
        header, *spans = [
            json.loads(line) for line in spans_path.read_text().splitlines()
        ]
        assert header["schema"] == SCHEMA_VERSION_2
        assert header["kind"] == "span-header"
        assert header["spans"] == len(spans)
        names = [span["name"] for span in spans]
        assert names[0] == "campaign:check"
        assert "slice:DotProduct" in names
        assert "task:clean:DotProduct" in names
        assert "task:inject:0" in names and "task:inject:1" in names
        assert "run:mmx" in names and "run:spu" in names
        assert "phase:compare" in names
        # Every parent id resolves and every span closed ok.
        by_id = {span["spanId"]: span for span in spans}
        for span in spans:
            parent = span["parentSpanId"]
            assert parent is None or parent in by_id
            assert span["status"] == {"code": "STATUS_CODE_OK"}
        roots = [span for span in spans if span["parentSpanId"] is None]
        assert [root["name"] for root in roots] == ["campaign:check"]

    def test_spans_never_touch_the_campaign_report(self, tmp_path, capsys):
        plain = tmp_path / "plain.json"
        spanned = tmp_path / "spanned.json"
        assert main(["check", "dotprod", "--faults", "2",
                     "--json", str(plain)]) == 0
        assert main(["check", "dotprod", "--faults", "2",
                     "--json", str(spanned),
                     "--spans", str(tmp_path / "s.jsonl")]) == 0
        assert plain.read_bytes() == spanned.read_bytes()

    def test_runner_check_spans_and_progress(self, tmp_path, capsys):
        spans_path = tmp_path / "spans.jsonl"
        # jobs=1 with a journal still routes through the Runner.
        assert main(["check", "dotprod", "--faults", "2", "--jobs", "1",
                     "--resume", str(tmp_path / "journal.jsonl"),
                     "--spans", str(spans_path), "--progress"]) == 0
        err = capsys.readouterr().err
        assert "[DotProduct/D]" in err and "clean:DotProduct: ok" in err
        spans = [json.loads(line)
                 for line in spans_path.read_text().splitlines()][1:]
        names = [span["name"] for span in spans]
        assert names[0] == "campaign:check"
        assert "slice:DotProduct/D" in names
        assert "task:clean:DotProduct" in names

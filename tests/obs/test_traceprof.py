"""Hot-trace profiler: back-edge detection, exact attribution, stability."""

from types import SimpleNamespace

from repro.cpu import Machine
from repro.isa import assemble
from repro.kernels import make_kernel
from repro.obs import (
    BranchEvent,
    EventBus,
    IssueEvent,
    RunEndEvent,
    RunStartEvent,
    StallEvent,
    TraceProfiler,
)

LOOP = "mov r0, 5\ntop: paddw mm0, mm1\nloop r0, top\nhalt"


def machine_of(source, **kwargs):
    return Machine(assemble(source), **kwargs)


class TestOnMachines:
    def test_cycles_attribute_exactly(self):
        machine = machine_of(LOOP)
        profiler = TraceProfiler().attach(machine)
        stats = machine.run()
        profiler.detach()
        assert profiler.attributed_cycles() == stats.cycles
        assert profiler.total_cycles == stats.cycles
        assert profiler.total_instructions == stats.instructions
        assert profiler.finished

    def test_cycles_attribute_exactly_on_kernels(self):
        kernel = make_kernel("DotProduct")
        for variant in ("mmx", "spu"):
            machine = kernel.machine(variant)
            profiler = TraceProfiler().attach(machine)
            stats = machine.run()
            profiler.detach()
            assert profiler.attributed_cycles() == stats.cycles, variant
            assert profiler.total_instructions == stats.instructions, variant

    def test_loop_iterations_aggregate_into_one_trace(self):
        machine = machine_of(LOOP)
        profiler = TraceProfiler().attach(machine)
        machine.run()
        profiler.detach()
        steady = profiler.traces[(1, (1, 2))]
        # 5 iterations: the entry path (prologue + iter 1) and the exit path
        # (iter 5 + halt) key separately; iterations 2-4 aggregate as one
        # steady-state body headed at `top`.
        assert steady.executions == 3
        assert steady.instructions == 6
        bodies = sorted(trace.body for trace in profiler.traces.values())
        assert bodies == [(0, 1, 2), (1, 2), (1, 2, 3)]

    def test_dominant_trace_is_the_kernel_loop(self):
        kernel = make_kernel("DotProduct")
        machine = kernel.machine("spu")
        profiler = TraceProfiler().attach(machine)
        stats = machine.run()
        profiler.detach()
        top = profiler.sorted_traces()[0]
        assert top.head == machine.program.labels["loop"]
        assert top.executions > 1
        assert top.cycles > stats.cycles / 2  # dominates the run
        assert top.head in profiler.stable_heads()

    def test_detach_restores_zero_subscribers(self):
        machine = machine_of(LOOP)
        TraceProfiler().attach(machine).detach()
        assert not machine.bus.has_subscribers()

    def test_observation_is_transparent(self):
        baseline = machine_of(LOOP).run()
        machine = machine_of(LOOP)
        TraceProfiler().attach(machine)
        stats = machine.run()
        assert stats.cycles == baseline.cycles
        assert stats.instructions == baseline.instructions


def synthetic(profiler_kwargs=None):
    """A profiler on a bare bus, driven by hand-crafted events."""
    bus = EventBus()
    profiler = TraceProfiler(**(profiler_kwargs or {})).attach(
        SimpleNamespace(bus=bus)
    )
    return bus, profiler


INSTR = SimpleNamespace(is_mmx=False)


def issue(bus, seq, cycle, pc, pipe="U", routed=False):
    bus.dispatch("issue", IssueEvent(
        seq=seq, cycle=cycle, pc=pc, instr=INSTR, pipe=pipe, routed=routed,
    ))


class TestSyntheticStreams:
    def test_back_edge_closes_and_rekeys(self):
        bus, profiler = synthetic()
        bus.dispatch("run_start", RunStartEvent(program="p", fill_cycles=1))
        for seq, (cycle, pc) in enumerate([(1, 0), (2, 1), (3, 2),
                                           (4, 1), (5, 2),
                                           (6, 1), (7, 2), (8, 3)]):
            issue(bus, seq, cycle, pc)
        bus.dispatch("run_end", RunEndEvent(
            program="p", cycles=10, instructions=8, finished=True,
        ))
        bodies = sorted(trace.body for trace in profiler.traces.values())
        assert bodies == [(0, 1, 2), (1, 2), (1, 2, 3)]
        assert profiler.attributed_cycles() == 10
        steady = profiler.traces[(1, (1, 2))]
        assert steady.executions == 1

    def test_pending_stall_lands_in_the_next_trace(self):
        bus, profiler = synthetic()
        bus.dispatch("run_start", RunStartEvent(program="p", fill_cycles=0))
        issue(bus, 0, 1, 0)
        issue(bus, 1, 2, 1)
        # Stall fires before the issue it delays — and that issue's pc is a
        # back edge, so the stall belongs to the *new* trace's window.
        bus.dispatch("stall", StallEvent(cycle=3, pc=0, cycles=2))
        issue(bus, 2, 5, 0)
        issue(bus, 3, 6, 1)
        bus.dispatch("run_end", RunEndEvent(
            program="p", cycles=7, instructions=4, finished=True,
        ))
        first = profiler.traces[(0, (0, 1))]
        assert first.executions == 2
        assert first.stall_cycles == 2
        assert first.cycles == 7
        assert profiler.attributed_cycles() == 7

    def test_branch_penalty_charges_the_open_trace(self):
        bus, profiler = synthetic()
        bus.dispatch("run_start", RunStartEvent(program="p", fill_cycles=0))
        issue(bus, 0, 1, 0)
        bus.dispatch("branch", BranchEvent(
            cycle=1, pc=0, taken=True, predicted_taken=False,
            mispredict=True, penalty=3,
        ))
        issue(bus, 1, 5, 0)
        bus.dispatch("run_end", RunEndEvent(
            program="p", cycles=6, instructions=2, finished=True,
        ))
        trace = profiler.traces[(0, (0,))]
        assert trace.mispredict_cycles == 3
        assert profiler.attributed_cycles() == 6

    def test_two_repeating_bodies_make_a_head_unstable(self):
        bus, profiler = synthetic()
        bus.dispatch("run_start", RunStartEvent(program="p", fill_cycles=0))
        seq = 0
        # Head 0 alternates between paths (0,1) and (0,2) — both repeat.
        for pcs in [(0, 1), (0, 2), (0, 1), (0, 2), (0, 1)]:
            for pc in pcs:
                issue(bus, seq, seq + 1, pc)
                seq += 1
        bus.dispatch("run_end", RunEndEvent(
            program="p", cycles=seq + 1, instructions=seq, finished=True,
        ))
        assert 0 not in profiler.stable_heads()

    def test_truncated_body_keeps_counting(self):
        bus, profiler = synthetic({"max_body": 2})
        bus.dispatch("run_start", RunStartEvent(program="p", fill_cycles=0))
        for seq, pc in enumerate((0, 1, 2, 3)):
            issue(bus, seq, seq + 1, pc)
        bus.dispatch("run_end", RunEndEvent(
            program="p", cycles=5, instructions=4, finished=True,
        ))
        trace = profiler.sorted_traces()[0]
        assert trace.truncated
        assert trace.instructions == 4  # counters keep going past the cap
        assert trace.body == (0, 1)
        assert profiler.attributed_cycles() == 5

    def test_as_dict_rates(self):
        bus, profiler = synthetic()
        bus.dispatch("run_start", RunStartEvent(program="p", fill_cycles=0))
        mmx = SimpleNamespace(is_mmx=True)
        bus.dispatch("issue", IssueEvent(
            seq=0, cycle=1, pc=0, instr=mmx, pipe="U", routed=True,
        ))
        bus.dispatch("issue", IssueEvent(
            seq=1, cycle=1, pc=1, instr=mmx, pipe="V", routed=False,
        ))
        bus.dispatch("run_end", RunEndEvent(
            program="p", cycles=2, instructions=2, finished=True,
        ))
        record = profiler.sorted_traces()[0].as_dict()
        assert record["pair_fraction"] == 0.5
        assert record["route_utilization"] == 0.5
        assert record["uop_hit_rate"] == 0.0  # both pcs were cold
        assert record["cpi"] == 1.0

"""CLI crash-recovery matrix: armed kill points x resume determinism.

Each case runs ``repro check --resume`` with a chaos kill point armed
(:mod:`repro.runner.chaos`), asserts the process died with the chaos exit
status at the armed instant, then resumes without chaos and demands the
merged report be byte-identical to an uninterrupted run — with the
``silent_unexplained == 0`` invariant intact.
"""

import json

import pytest

from repro.runner import load_journal
from repro.runner.chaos import KILL_EXIT
from tests.serve.harness import run_cli

CHECK_ARGS = (
    "check", "DotProduct", "MatrixTranspose",
    "--fast", "--faults", "12", "--seed", "7", "--jobs", "1",
)


@pytest.fixture(scope="module")
def serial_reference(tmp_path_factory):
    target = tmp_path_factory.mktemp("serial") / "reference.json"
    done = run_cli(*CHECK_ARGS, "--json", str(target))
    assert done.returncode == 0, done.stderr.decode()
    return target.read_bytes()


# A 12-fault campaign journals a header plus 14 task records, fsync'ing
# every 8 appends — so these counts crash early, mid and late in the run.
MATRIX = [
    ("journal-append", 2),   # before the first task record is written
    ("journal-append", 9),   # mid-campaign, half the records on disk
    ("pre-fsync", 2),        # first batched fsync: 8 records unsynced
]


@pytest.mark.parametrize("point,after", MATRIX)
def test_crash_then_resume_is_byte_identical(
    point, after, tmp_path, serial_reference
):
    journal = tmp_path / "campaign.jsonl"
    report = tmp_path / "report.json"
    crashed = run_cli(
        *CHECK_ARGS, "--resume", str(journal), "--json", str(report),
        REPRO_CHAOS_KILL_POINT=point,
        REPRO_CHAOS_KILL_AFTER=str(after),
    )
    assert crashed.returncode == KILL_EXIT
    assert not report.exists()
    # Whatever hit the disk is a loadable prefix — never corrupt mid-file.
    load = load_journal(journal)
    assert load.corrupt == 0

    resumed = run_cli(*CHECK_ARGS, "--resume", str(journal), "--json", str(report))
    assert resumed.returncode == 0, resumed.stderr.decode()
    raw = report.read_bytes()
    assert raw == serial_reference
    doc = json.loads(raw)
    assert doc["data"]["summary"]["analysis"]["silent_unexplained"] == 0


def test_kill_marker_disarms_the_point_after_one_crash(
    tmp_path, serial_reference
):
    """CI's serve-smoke restarts with the chaos env still set; the marker
    protocol keeps the second process alive."""
    journal = tmp_path / "campaign.jsonl"
    report = tmp_path / "report.json"
    marker = tmp_path / "crashed.marker"
    env = {
        "REPRO_CHAOS_KILL_POINT": "journal-append",
        "REPRO_CHAOS_KILL_AFTER": "5",
        "REPRO_CHAOS_KILL_MARKER": str(marker),
    }
    crashed = run_cli(
        *CHECK_ARGS, "--resume", str(journal), "--json", str(report), **env
    )
    assert crashed.returncode == KILL_EXIT
    assert marker.exists()

    # Same environment, second run: the existing marker disarms the point.
    resumed = run_cli(
        *CHECK_ARGS, "--resume", str(journal), "--json", str(report), **env
    )
    assert resumed.returncode == 0, resumed.stderr.decode()
    assert report.read_bytes() == serial_reference

"""Journal: atomic appends, truncated-tail recovery, fingerprint identity."""

import json

import pytest

from repro.errors import RunnerError
from repro.obs.export import RUNNER_SCHEMA_VERSION
from repro.runner import Journal, load_journal

FP = {"verb": "test", "seed": 7}


class TestRoundTrip:
    def test_header_then_records(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path, FP) as journal:
            journal.append({"type": "done", "task": "a", "status": "ok",
                            "result": {"x": 1}})
        header, records, truncated = load_journal(path)
        assert header["schema"] == RUNNER_SCHEMA_VERSION
        assert header["fingerprint"] == FP
        assert records == [{"type": "done", "task": "a", "status": "ok",
                            "result": {"x": 1}}]
        assert not truncated

    def test_missing_file_loads_empty(self, tmp_path):
        assert load_journal(tmp_path / "absent.jsonl") == (None, [], False)

    def test_each_record_is_one_line(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path, FP) as journal:
            for index in range(5):
                journal.append({"type": "done", "task": f"t{index}",
                                "status": "ok", "result": None})
        lines = path.read_text().splitlines()
        assert len(lines) == 6  # header + 5
        assert all(json.loads(line) for line in lines)


class TestCrashConsistency:
    def test_truncated_tail_keeps_valid_prefix(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path, FP) as journal:
            journal.append({"type": "done", "task": "a", "status": "ok",
                            "result": 1})
        # Simulate a crash mid-append: a half-written final line.
        with open(path, "a") as fp:
            fp.write('{"type": "done", "task": "b", "stat')
        header, records, truncated = load_journal(path)
        assert truncated
        assert header is not None
        assert [r["task"] for r in records] == ["a"]
        # Reopening resumes from the valid prefix and can keep appending.
        with Journal(path, FP) as journal:
            assert journal.truncated
            assert set(journal.completed()) == {"a"}

    def test_completed_only_counts_ok(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path, FP) as journal:
            journal.append({"type": "done", "task": "good", "status": "ok",
                            "result": 1})
            journal.append({"type": "done", "task": "bad", "status": "failed",
                            "result": None})
            journal.append({"type": "done", "task": "skip", "status": "skipped",
                            "result": None})
            journal.append({"type": "attempt", "task": "good", "attempt": 1,
                            "status": "error"})
        with Journal(path, FP) as journal:
            assert set(journal.completed()) == {"good"}


class TestFingerprint:
    def test_mismatched_fingerprint_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        Journal(path, FP).close()
        with pytest.raises(RunnerError, match="different campaign"):
            Journal(path, {"verb": "test", "seed": 8})

    def test_mismatched_schema_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(json.dumps({"type": "header", "schema": "bogus/9",
                                    "fingerprint": FP}) + "\n")
        with pytest.raises(RunnerError, match="schema"):
            Journal(path, FP)

    def test_resumed_flag(self, tmp_path):
        path = tmp_path / "j.jsonl"
        first = Journal(path, FP)
        assert not first.resumed
        first.close()
        second = Journal(path, FP)
        assert second.resumed
        second.close()

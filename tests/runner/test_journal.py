"""Journal: checksummed appends, corrupt-record recovery, fingerprints."""

import json
import warnings
import zlib

import pytest

from repro.errors import RunnerError
from repro.obs.export import RUNNER_SCHEMA_VERSION
from repro.runner import Journal, load_journal

FP = {"verb": "test", "seed": 7}


def done(task, status="ok", result=None):
    return {"type": "done", "task": task, "status": status, "result": result}


class TestRoundTrip:
    def test_header_then_records(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path, FP) as journal:
            journal.append(done("a", result={"x": 1}))
        load = load_journal(path)
        assert load.header["schema"] == RUNNER_SCHEMA_VERSION
        assert load.header["fingerprint"] == FP
        assert load.records == [done("a", result={"x": 1})]
        assert not load.truncated
        assert load.corrupt == 0
        assert load.legacy == 0

    def test_missing_file_loads_empty(self, tmp_path):
        load = load_journal(tmp_path / "absent.jsonl")
        assert (load.header, load.records, load.truncated) == (None, [], False)

    def test_each_record_is_one_checksummed_line(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path, FP) as journal:
            for index in range(5):
                journal.append(done(f"t{index}"))
        lines = path.read_bytes().splitlines()
        assert len(lines) == 6  # header + 5
        for line in lines:
            crc, payload = line.split(b" ", 1)
            assert int(crc, 16) == zlib.crc32(payload)
            assert json.loads(payload)


class TestCrashConsistency:
    def test_truncated_tail_keeps_valid_prefix(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path, FP) as journal:
            journal.append(done("a", result=1))
        # Simulate a crash mid-append: a half-written final line.
        with open(path, "a") as fp:
            fp.write('1a2b3c4d {"type": "done", "task": "b", "stat')
        load = load_journal(path)
        assert load.truncated
        assert load.corrupt == 0
        assert load.header is not None
        assert [r["task"] for r in load.records] == ["a"]
        # Reopening resumes from the valid prefix and can keep appending.
        with Journal(path, FP) as journal:
            assert journal.truncated
            assert set(journal.completed()) == {"a"}

    def test_corrupt_mid_file_record_is_skipped_and_counted(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path, FP) as journal:
            for task in ("a", "b", "c"):
                journal.append(done(task, result=task))
        lines = path.read_bytes().splitlines(keepends=True)
        # Flip bytes inside record "b" (line 2): CRC now fails mid-file.
        lines[2] = lines[2].replace(b'"task"', b'"tXsk"')
        path.write_bytes(b"".join(lines))
        load = load_journal(path)
        assert load.corrupt == 1
        assert not load.truncated
        # Records before AND after the damage survive.
        assert [r["task"] for r in load.records] == ["a", "c"]
        with pytest.warns(RuntimeWarning, match="corrupt journal record"):
            with Journal(path, FP) as journal:
                assert journal.corrupt_records == 1
                assert set(journal.completed()) == {"a", "c"}

    def test_crc_catches_in_place_bitrot_that_still_parses(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path, FP) as journal:
            journal.append(done("a", result=17))
            journal.append(done("b", result=1))
        lines = path.read_bytes().splitlines(keepends=True)
        # "result":17 -> "result":97 — valid JSON, wrong bytes.  A parse-only
        # loader would happily return the damaged result.
        assert b"17" in lines[1]
        lines[1] = lines[1].replace(b"17", b"97")
        path.write_bytes(b"".join(lines))
        load = load_journal(path)
        assert load.corrupt == 1
        assert [r["task"] for r in load.records] == ["b"]

    def test_completed_only_counts_ok(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path, FP) as journal:
            journal.append(done("good", result=1))
            journal.append(done("bad", status="failed"))
            journal.append(done("skip", status="skipped"))
            journal.append({"type": "attempt", "task": "good", "attempt": 1,
                            "status": "error"})
        with Journal(path, FP) as journal:
            assert set(journal.completed()) == {"good"}

    def test_headerless_content_is_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        line = json.dumps(done("orphan")).encode()
        path.write_bytes(b"%08x " % zlib.crc32(line) + line + b"\n")
        with pytest.raises(RunnerError, match="header is missing or corrupt"):
            Journal(path, FP)


class TestLegacyJournals:
    def write_legacy(self, path, records):
        with open(path, "w") as fp:
            header = {"type": "header", "schema": RUNNER_SCHEMA_VERSION,
                      "fingerprint": FP}
            for record in (header, *records):
                fp.write(json.dumps(record, separators=(",", ":")) + "\n")

    def test_checksum_less_journal_loads_with_warning(self, tmp_path):
        path = tmp_path / "old.jsonl"
        self.write_legacy(path, [done("a", result=1), done("b", result=2)])
        load = load_journal(path)
        assert load.legacy == 3  # header + 2 records
        assert [r["task"] for r in load.records] == ["a", "b"]
        with pytest.warns(RuntimeWarning, match="checksum-less"):
            with Journal(path, FP) as journal:
                assert journal.legacy_records == 3
                assert set(journal.completed()) == {"a", "b"}
                # New appends to the old file are checksummed.
                journal.append(done("c", result=3))
        reloaded = load_journal(path)
        assert [r["task"] for r in reloaded.records] == ["a", "b", "c"]
        assert reloaded.legacy == 3  # the fresh record carries a CRC

    def test_legacy_torn_tail_still_truncates(self, tmp_path):
        path = tmp_path / "old.jsonl"
        self.write_legacy(path, [done("a")])
        with open(path, "a") as fp:
            fp.write('{"type": "done", "task": "b", "stat')
        load = load_journal(path)
        assert load.truncated
        assert [r["task"] for r in load.records] == ["a"]


class TestFingerprint:
    def test_mismatched_fingerprint_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        Journal(path, FP).close()
        with pytest.raises(RunnerError, match="different campaign"):
            Journal(path, {"verb": "test", "seed": 8})

    def test_mismatched_schema_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(json.dumps({"type": "header", "schema": "bogus/9",
                                    "fingerprint": FP}) + "\n")
        with pytest.raises(RunnerError, match="schema"):
            Journal(path, FP)

    def test_resumed_flag(self, tmp_path):
        path = tmp_path / "j.jsonl"
        first = Journal(path, FP)
        assert not first.resumed
        first.close()
        second = Journal(path, FP)
        assert second.resumed
        second.close()


class TestWarningHygiene:
    def test_clean_journal_reload_warns_nothing(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path, FP) as journal:
            journal.append(done("a"))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            Journal(path, FP).close()

"""Retry backoff (full jitter) and the per-slice circuit breaker."""

import random

from repro.runner import CircuitBreaker, RetryPolicy
from repro.runner.policy import (
    CALIBRATION_FACTOR,
    CALIBRATION_SLACK_S,
    calibrated_timeout_s,
)


class TestRetryPolicy:
    def test_full_jitter_stays_within_growing_cap(self):
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.1, max_delay_s=10.0)
        rng = random.Random(0)
        for attempt in range(1, 6):
            cap = 0.1 * (2 ** (attempt - 1))
            for _ in range(50):
                assert 0.0 <= policy.delay(attempt, rng) <= cap

    def test_delay_honours_hard_ceiling(self):
        policy = RetryPolicy(base_delay_s=1.0, max_delay_s=1.5)
        rng = random.Random(1)
        assert all(policy.delay(10, rng) <= 1.5 for _ in range(100))

    def test_jitter_is_seed_deterministic(self):
        policy = RetryPolicy()
        a = [policy.delay(n, random.Random(42)) for n in range(1, 4)]
        b = [policy.delay(n, random.Random(42)) for n in range(1, 4)]
        assert a == b

    def test_exhausted(self):
        policy = RetryPolicy(max_attempts=3)
        assert not policy.exhausted(2)
        assert policy.exhausted(3)
        assert policy.exhausted(4)


class TestCircuitBreaker:
    def test_opens_at_threshold(self):
        breaker = CircuitBreaker(threshold=3)
        assert not breaker.record_failure("k/D")
        assert not breaker.record_failure("k/D")
        assert breaker.record_failure("k/D")  # the trip
        assert not breaker.allow("k/D")
        assert breaker.open_slices == ("k/D",)

    def test_trips_at_most_once_per_slice(self):
        breaker = CircuitBreaker(threshold=1)
        assert breaker.record_failure("k/D")
        # Further failures on an open slice never re-trip.
        assert not breaker.record_failure("k/D")
        assert breaker.trips == {"k/D": 1}

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure("k/D")
        breaker.record_success("k/D")
        assert not breaker.record_failure("k/D")
        assert breaker.allow("k/D")

    def test_slices_are_independent(self):
        breaker = CircuitBreaker(threshold=1)
        breaker.record_failure("a/D")
        assert not breaker.allow("a/D")
        assert breaker.allow("b/D")

    def test_empty_slice_is_exempt(self):
        breaker = CircuitBreaker(threshold=1)
        assert not breaker.record_failure("")
        assert breaker.allow("")
        assert breaker.open_slices == ()


class TestCalibratedTimeout:
    """One calibration formula shared by campaign injection timeouts and
    serve job supervision budgets."""

    def test_formula(self):
        assert calibrated_timeout_s(2.0) == 2.0 * CALIBRATION_FACTOR + CALIBRATION_SLACK_S

    def test_slack_floor_swallows_nonsense_measurements(self):
        # A zero or negative "clean" duration (clock skew, cold caches)
        # still yields the slack as a usable minimum budget.
        assert calibrated_timeout_s(0.0) == CALIBRATION_SLACK_S
        assert calibrated_timeout_s(-3.0) == CALIBRATION_SLACK_S

    def test_overrides(self):
        assert calibrated_timeout_s(1.0, factor=2.0, slack_s=0.5) == 2.5

    def test_budget_is_monotonic_in_clean_duration(self):
        budgets = [calibrated_timeout_s(s) for s in (0.1, 1.0, 10.0)]
        assert budgets == sorted(budgets)

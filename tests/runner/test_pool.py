"""Runner orchestration: pool execution, retries, crashes, hangs, breaker.

Uses the built-in ``probe`` executor (:func:`repro.runner.tasks.run_probe`)
so every failure mode is injected deterministically — transient failures via
a shared marker file, crashes via ``os._exit``, hangs via ``SIGSTOP``.
"""

import pytest

from repro.obs import EventBus
from repro.runner import (
    Runner,
    RunnerConfig,
    RetryPolicy,
    probe_task,
    runner_report,
)
from repro.runner.pool import PoolStartError, WorkerPool


def collect(bus: EventBus) -> dict[str, list]:
    """Subscribe to every runner topic, returning the per-topic capture."""
    seen: dict[str, list] = {}
    for topic in ("task_start", "task_retry", "task_timeout", "breaker_open",
                  "task_done"):
        seen[topic] = []
        bus.subscribe(topic, seen[topic].append)
    return seen


def fast_retry(max_attempts: int = 3) -> RetryPolicy:
    return RetryPolicy(max_attempts=max_attempts, base_delay_s=0.01,
                       max_delay_s=0.05)


class TestPooledExecution:
    def test_all_tasks_reach_ok(self):
        bus = EventBus()
        seen = collect(bus)
        runner = Runner(RunnerConfig(jobs=2, retry=fast_retry()), bus=bus)
        tasks = [probe_task(f"t{i}", result={"i": i}) for i in range(6)]
        results = runner.run(tasks)
        assert len(results) == 6
        assert all(r.ok for r in results.values())
        assert {r.result["echo"]["i"] for r in results.values()} == set(range(6))
        assert runner.stats.ok == 6
        assert len(seen["task_done"]) == 6
        assert len(seen["task_start"]) == 6

    def test_tasks_actually_ran_in_workers(self):
        import os

        runner = Runner(RunnerConfig(jobs=2, retry=fast_retry()))
        results = runner.run([probe_task(f"t{i}") for i in range(4)])
        pids = {r.result["pid"] for r in results.values()}
        assert os.getpid() not in pids

    def test_transient_failure_is_retried_to_success(self, tmp_path):
        bus = EventBus()
        seen = collect(bus)
        runner = Runner(RunnerConfig(jobs=2, retry=fast_retry()), bus=bus)
        marker = tmp_path / "flaky"
        results = runner.run([
            probe_task("flaky", fail_marker=str(marker), fail_times=1),
        ])
        assert results["flaky"].ok
        assert results["flaky"].attempts == 2
        assert runner.stats.retries == 1
        assert [e.reason for e in seen["task_retry"]] == ["error"]

    def test_worker_crash_is_retried_on_a_fresh_worker(self, tmp_path,
                                                       monkeypatch):
        from repro.runner.pool import CRASH_MARKER_ENV, CRASH_TASK_ENV

        # The first worker to pick up "victim" dies before executing it;
        # the marker file arms the retry to proceed normally.
        monkeypatch.setenv(CRASH_TASK_ENV, "victim")
        monkeypatch.setenv(CRASH_MARKER_ENV, str(tmp_path / "crashed"))
        runner = Runner(RunnerConfig(jobs=2, retry=fast_retry(),
                                     poll_s=0.02, heartbeat_s=0.05))
        results = runner.run([probe_task("victim"), probe_task("bystander")])
        assert all(r.ok for r in results.values())
        assert results["victim"].attempts == 2
        assert runner.stats.crashes == 1
        assert (tmp_path / "crashed").exists()

    def test_hard_crash_exhausts_retries_to_failed(self):
        runner = Runner(RunnerConfig(jobs=2, retry=fast_retry(2),
                                     hang_timeout_s=10.0))
        results = runner.run([probe_task("die", crash=7)])
        result = results["die"]
        assert result.status == "failed"
        assert result.attempts == 2
        assert "crash" in result.failure
        assert runner.stats.crashes == 2

    def test_persistent_error_fails_after_max_attempts(self):
        runner = Runner(RunnerConfig(jobs=2, retry=fast_retry(3)))
        results = runner.run([probe_task("bad", fail="always broken")])
        result = results["bad"]
        assert result.status == "failed"
        assert result.attempts == 3
        assert "always broken" in result.failure
        assert runner.stats.errors == 3

    def test_wall_clock_timeout_kills_and_fails(self):
        bus = EventBus()
        seen = collect(bus)
        runner = Runner(
            RunnerConfig(jobs=2, retry=fast_retry(1), poll_s=0.02,
                         heartbeat_s=0.05, hang_timeout_s=30.0),
            bus=bus,
        )
        results = runner.run([
            probe_task("slow", timeout_s=0.3, sleep_s=30.0),
        ])
        assert results["slow"].status == "failed"
        assert results["slow"].failure.startswith("timeout")
        assert runner.stats.timeouts == 1
        assert [e.kind for e in seen["task_timeout"]] == ["timeout"]

    def test_frozen_worker_is_detected_as_hung(self):
        bus = EventBus()
        seen = collect(bus)
        runner = Runner(
            RunnerConfig(jobs=2, retry=fast_retry(1), poll_s=0.02,
                         heartbeat_s=0.05, hang_timeout_s=0.4),
            bus=bus,
        )
        results = runner.run([probe_task("frozen", freeze=True)])
        assert results["frozen"].status == "failed"
        assert results["frozen"].failure.startswith("hang")
        assert runner.stats.hangs == 1
        assert [e.kind for e in seen["task_timeout"]] == ["hang"]

    def test_breaker_opens_and_skips_the_rest_of_the_slice(self):
        bus = EventBus()
        seen = collect(bus)
        runner = Runner(
            RunnerConfig(jobs=2, retry=fast_retry(1), breaker_threshold=2),
            bus=bus,
        )
        tasks = [probe_task(f"s{i}", slice="kern/D", fail="nope")
                 for i in range(5)]
        tasks.append(probe_task("other", slice="fine/D"))
        results = runner.run(tasks)
        statuses = [results[f"s{i}"].status for i in range(5)]
        # Two failures trip the breaker; tasks already in flight on the
        # second worker may still fail, but everything not yet dispatched
        # is recorded skipped — and nothing is lost.
        assert statuses.count("failed") >= 2
        assert statuses.count("skipped") >= 1
        assert statuses.count("failed") + statuses.count("skipped") == 5
        assert results["other"].ok  # other slices unaffected
        assert runner.stats.breaker_trips == 1
        assert len(seen["breaker_open"]) == 1
        assert seen["breaker_open"][0].slice == "kern/D"
        assert runner.breaker.open_slices == ("kern/D",)


class TestSerialPath:
    def test_jobs_1_runs_in_process(self):
        import os

        runner = Runner(RunnerConfig(jobs=1))
        results = runner.run([probe_task("t0")])
        assert results["t0"].result["pid"] == os.getpid()
        assert runner.fallback_reason is None

    def test_pool_start_failure_falls_back_to_serial(self, monkeypatch):
        from repro.runner import service

        def refuse(self):
            raise PoolStartError("no processes today")

        monkeypatch.setattr(service.WorkerPool, "start", refuse)
        runner = Runner(RunnerConfig(jobs=4))
        results = runner.run([probe_task("t0")])
        assert results["t0"].ok
        assert runner.fallback_reason == "no processes today"

    def test_serial_retries_and_breaker_match_pool_semantics(self, tmp_path):
        runner = Runner(RunnerConfig(jobs=1, retry=fast_retry(),
                                     breaker_threshold=1))
        marker = tmp_path / "flaky"
        results = runner.run([
            probe_task("flaky", fail_marker=str(marker), fail_times=1),
            probe_task("bad", slice="k/D", fail="broken"),
            probe_task("skipped", slice="k/D"),
        ])
        assert results["flaky"].ok and results["flaky"].attempts == 2
        assert results["bad"].status == "failed"
        assert results["skipped"].status == "skipped"


class TestRunnerReport:
    def test_report_covers_every_task(self):
        runner = Runner(RunnerConfig(jobs=1, retry=fast_retry(1),
                                     breaker_threshold=1))
        runner.run([probe_task("a"), probe_task("b", slice="k/D",
                                                fail="broken")])
        report = runner_report(runner)
        assert report["kind"] == "runner"
        assert report["schema"] == "repro.runner/1"
        body = report["data"]
        assert [t["task"] for t in body["tasks"]] == ["a", "b"]
        assert body["stats"]["ok"] == 1
        assert body["stats"]["failed"] == 1
        assert body["breaker"]["open_slices"] == ["k/D"]


class TestPoolGuards:
    def test_pool_requires_two_jobs(self):
        with pytest.raises(PoolStartError):
            WorkerPool(1)

    def test_duplicate_task_ids_rejected(self):
        from repro.errors import RunnerError

        runner = Runner(RunnerConfig(jobs=1))
        with pytest.raises(RunnerError, match="duplicate"):
            runner.run([probe_task("same"), probe_task("same")])

    def test_unknown_kind_fails_the_task(self):
        from repro.runner import TaskSpec

        runner = Runner(RunnerConfig(jobs=1, retry=fast_retry(1)))
        results = runner.run([TaskSpec(id="x", kind="no-such-kind")])
        assert results["x"].status == "failed"
        assert "unknown task kind" in results["x"].failure

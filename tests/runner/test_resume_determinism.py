"""Satellite: kill the runner mid-campaign, resume, merge byte-identically.

The acceptance scenario of the resilient runner: a parallel campaign that
loses a worker to an injected crash *and* is interrupted partway through
must, after resuming from its journal, produce a merged report that is
byte-for-byte identical to an uninterrupted serial run.
"""

import json

import pytest

from repro.errors import RunnerInterrupted
from repro.faults import run_check, run_check_parallel
from repro.faults.report import check_report
from repro.runner import RunnerConfig
from repro.runner.pool import CRASH_MARKER_ENV, CRASH_TASK_ENV

KERNELS = ("DotProduct", "MatrixTranspose")
FAULTS = 10
SEED = 7


def report_bytes(result) -> bytes:
    return json.dumps(check_report(result), sort_keys=True).encode()


@pytest.fixture(scope="module")
def serial_bytes():
    result = run_check(kernels=KERNELS, faults=FAULTS, seed=SEED, fast=True)
    return report_bytes(result)


class TestResumeDeterminism:
    def test_parallel_matches_serial(self, serial_bytes):
        result, runner = run_check_parallel(
            kernels=KERNELS, faults=FAULTS, seed=SEED, fast=True, jobs=2,
        )
        assert report_bytes(result) == serial_bytes
        assert runner.stats.failed == 0

    def test_crash_interrupt_resume_is_byte_identical(
        self, serial_bytes, tmp_path, monkeypatch
    ):
        journal = tmp_path / "campaign.jsonl"
        # A worker dies the moment it picks up injection 3 (once), and the
        # run is interrupted after 6 terminal tasks — both on the same run.
        monkeypatch.setenv(CRASH_TASK_ENV, "inject:3")
        monkeypatch.setenv(CRASH_MARKER_ENV, str(tmp_path / "crashed"))
        config = RunnerConfig(jobs=2, interrupt_after=6, poll_s=0.02,
                              heartbeat_s=0.05)
        with pytest.raises(RunnerInterrupted):
            run_check_parallel(
                kernels=KERNELS, faults=FAULTS, seed=SEED, fast=True,
                jobs=2, journal_path=journal, runner_config=config,
            )
        assert journal.exists()

        # Resume: no crash injection this time, no interruption budget.
        monkeypatch.delenv(CRASH_TASK_ENV)
        result, runner = run_check_parallel(
            kernels=KERNELS, faults=FAULTS, seed=SEED, fast=True, jobs=2,
            journal_path=journal,
        )
        assert report_bytes(result) == serial_bytes
        # The resumed run actually reused journalled work.
        assert runner.stats.cached > 0
        # No lost tasks: every injection index present exactly once.
        assert [r["index"] for r in result.injections] == list(range(FAULTS))

    def test_interrupt_flushes_a_loadable_journal(self, tmp_path):
        from repro.runner import load_journal

        journal = tmp_path / "campaign.jsonl"
        config = RunnerConfig(jobs=1, interrupt_after=3)
        with pytest.raises(RunnerInterrupted):
            run_check_parallel(
                kernels=KERNELS, faults=FAULTS, seed=SEED, fast=True,
                jobs=1, journal_path=journal, runner_config=config,
            )
        load = load_journal(journal)
        assert not load.truncated
        assert load.header["fingerprint"]["verb"] == "check"
        done = [r for r in load.records if r.get("type") == "done"]
        assert len(done) == 3

"""Satellite: SIGINT/SIGTERM stop campaigns on the clean, resumable path.

In-process tests cover the ``clean_interrupts`` context manager directly;
the subprocess test delivers a real SIGTERM to a running ``repro check``
campaign and asserts the contract: exit code 3, a non-truncated journal,
and a resume that merges byte-identical to an uninterrupted serial run.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import RunnerInterrupted
from repro.runner import CampaignSignalled, clean_interrupts, load_journal

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SRC = os.path.join(REPO, "src")


def repro_cmd(*args: str) -> list[str]:
    return [sys.executable, "-m", "repro", *args]


def repro_env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestCleanInterrupts:
    def test_sigterm_raises_campaign_signalled(self):
        with pytest.raises(CampaignSignalled) as info:
            with clean_interrupts():
                os.kill(os.getpid(), signal.SIGTERM)
                time.sleep(5)  # never reached: the handler raises
        assert info.value.signal_name == "SIGTERM"

    def test_campaign_signalled_is_runner_interrupted(self):
        # The CLI's existing `except RunnerInterrupted: return 3` must
        # cover the signal path without a second catch clause.
        assert issubclass(CampaignSignalled, RunnerInterrupted)
        exc = CampaignSignalled(signal.SIGINT)
        assert exc.signal_name == "SIGINT"
        assert "resume" in str(exc)

    def test_previous_handlers_restored(self):
        before = signal.getsignal(signal.SIGTERM)
        with clean_interrupts():
            assert signal.getsignal(signal.SIGTERM) is not before
        assert signal.getsignal(signal.SIGTERM) is before

    def test_noop_off_main_thread(self):
        # Worker threads must not try to install handlers (ValueError);
        # the manager is a transparent no-op there.
        failures: list[BaseException] = []

        def body() -> None:
            try:
                with clean_interrupts():
                    pass
            except BaseException as exc:  # pragma: no cover - fail signal
                failures.append(exc)

        worker = threading.Thread(target=body)
        worker.start()
        worker.join()
        assert failures == []


class TestSigtermIntegration:
    def test_sigterm_mid_campaign_exits_3_and_resumes_byte_identical(
        self, tmp_path
    ):
        journal = tmp_path / "campaign.jsonl"
        report = tmp_path / "report.json"
        serial = tmp_path / "serial.json"
        cmd = repro_cmd(
            "check", "DotProduct", "MatrixTranspose", "--fast",
            "--faults", "400", "--seed", "7", "--jobs", "1",
            "--resume", str(journal), "--json", str(report),
        )
        proc = subprocess.Popen(cmd, env=repro_env(),
                                stdout=subprocess.PIPE,
                                stderr=subprocess.PIPE)
        # Wait for the campaign to make journalled progress, then SIGTERM.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if journal.exists() and len(journal.read_bytes().splitlines()) >= 4:
                break
            if proc.poll() is not None:
                break
            time.sleep(0.02)
        else:  # pragma: no cover - diagnostics on hang
            proc.kill()
            pytest.fail("campaign never journalled progress")
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
        _, stderr = proc.communicate(timeout=60)
        if proc.returncode == 0:  # pragma: no cover - too-fast campaign
            pytest.skip("campaign finished before SIGTERM landed")
        assert proc.returncode == 3, stderr.decode()
        assert b"SIGTERM" in stderr
        assert b"Traceback" not in stderr

        # The interrupted journal is clean: loadable, not truncated.
        load = load_journal(journal)
        assert not load.truncated
        assert load.corrupt == 0
        assert load.header["fingerprint"]["verb"] == "check"

        # Resume merges byte-identical to an uninterrupted serial run.
        done = subprocess.run(
            repro_cmd("check", "DotProduct", "MatrixTranspose", "--fast",
                      "--faults", "400", "--seed", "7", "--jobs", "1",
                      "--resume", str(journal), "--json", str(report)),
            env=repro_env(), capture_output=True, timeout=120,
        )
        assert done.returncode == 0, done.stderr.decode()
        ref = subprocess.run(
            repro_cmd("check", "DotProduct", "MatrixTranspose", "--fast",
                      "--faults", "400", "--seed", "7",
                      "--json", str(serial)),
            env=repro_env(), capture_output=True, timeout=120,
        )
        assert ref.returncode == 0, ref.stderr.decode()
        assert report.read_bytes() == serial.read_bytes()
        merged = json.loads(report.read_text())
        analysis = merged["data"]["summary"]["analysis"]
        assert analysis["silent_unexplained"] == 0

"""Subprocess harness shared by the serve integration and chaos tests."""

import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SRC = os.path.join(REPO, "src")

#: Small campaign every harness test reuses; matches the committed CLI
#: baseline parameters (kernels, faults, seed) so reports cross-check.
CHECK_PARAMS = {
    "kernels": ["DotProduct", "MatrixTranspose"],
    "faults": 12,
    "seed": 7,
    "fast": True,
}

#: Longer campaign for tests that must catch the worker mid-run.
LONG_CHECK_PARAMS = {**CHECK_PARAMS, "faults": 250}


def serve_env(**extra: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.update(extra)
    return env


def start_serve(journal_dir, *args: str, **env_extra: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--journal-dir", str(journal_dir), *args],
        env=serve_env(**env_extra),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
    )


def run_cli(*args: str, timeout: float = 300.0, **env_extra: str):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=serve_env(**env_extra), capture_output=True, timeout=timeout,
    )


def serial_report_bytes(tmp_path, params: dict) -> bytes:
    """``repro check --json`` bytes for *params* (the determinism oracle)."""
    target = tmp_path / "serial-reference.json"
    args = ["check", *params["kernels"],
            "--faults", str(params["faults"]), "--seed", str(params["seed"]),
            "--json", str(target)]
    if params["fast"]:
        args.append("--fast")
    done = run_cli(*args)
    assert done.returncode == 0, done.stderr.decode()
    return target.read_bytes()

"""The full chaos matrix: kill stage x worker topology, then recovery.

The tentpole's strongest claim is not "the service survives one crash" but
that the *matrix* holds: SIGKILL at every stage of the job lifecycle —
mid-campaign, mid-compaction (both sides of the atomic rename), mid-drain —
crossed with the worker topologies (``--workers 1 --jobs 1`` and
``--workers 2 --jobs 2``), always recovers every acknowledged job to a
report byte-identical to an uninterrupted serial ``repro check``.

The compaction rows also prove the equivalence claim: a journal whose
compaction was killed halfway recovers to exactly the same job states and
report bytes as an untouched copy of the same journal.
"""

import json
import shutil
import time

import pytest

from repro.errors import ServeError
from repro.runner.chaos import KILL_EXIT
from repro.serve import ServeClient, read_endpoint
from tests.serve.harness import (
    CHECK_PARAMS,
    run_cli,
    serial_report_bytes,
    start_serve,
)

#: Campaign sized so the kill reliably lands mid-run without the full
#: 250-fault budget of the targeted crash tests (the matrix multiplies).
MATRIX_CHECK_PARAMS = {**CHECK_PARAMS, "faults": 80}

#: (workers, jobs) topologies the matrix crosses every kill stage with.
TOPOLOGIES = [("1", "1"), ("2", "2")]


@pytest.fixture(scope="module")
def serial_small(tmp_path_factory):
    return serial_report_bytes(tmp_path_factory.mktemp("small"), CHECK_PARAMS)


@pytest.fixture(scope="module")
def serial_matrix(tmp_path_factory):
    return serial_report_bytes(
        tmp_path_factory.mktemp("matrix"), MATRIX_CHECK_PARAMS
    )


def topology_args(workers: str, jobs: str) -> tuple:
    return ("--workers", workers, "--jobs", jobs)


def wait_for_lines(path, count, timeout_s=120.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if path.exists() and len(path.read_bytes().splitlines()) >= count:
            return
        time.sleep(0.02)
    raise AssertionError(f"{path} never reached {count} lines")


def kill_server(proc):
    if proc.poll() is None:
        proc.kill()
        proc.wait()


def recover_and_check(journal_dir, extra_args, expectations, min_epoch=2):
    """Restart on *journal_dir*; demand every acknowledged job's bytes.

    *expectations* maps job id -> (reference_bytes, expect_resumed).
    Returns the final ``job -> state`` map for equivalence comparisons.
    """
    proc = start_serve(journal_dir, *extra_args)
    states = {}
    try:
        host, port = read_endpoint(
            journal_dir, timeout_s=20, min_epoch=min_epoch
        )
        client = ServeClient(host, port)
        for job, (reference, expect_resumed) in sorted(expectations.items()):
            assert client.wait(job, timeout_s=600) == "done"
            raw = client.report_bytes(job)
            assert raw == reference, f"{job} diverged from the serial oracle"
            doc = json.loads(raw)
            analysis = doc["data"]["summary"]["analysis"]
            assert analysis["silent_unexplained"] == 0
            if expect_resumed:
                runner = client.runner_doc(job)["data"]
                assert runner["journal"]["resumed"] is True
            states[job] = client.job(job)["state"]
        client.drain()
        proc.wait(timeout=60)
        assert proc.returncode == 3
    finally:
        kill_server(proc)
    return states


class TestMidJobKill:
    @pytest.mark.parametrize("workers,jobs", TOPOLOGIES)
    def test_sigkill_mid_campaign_recovers_every_acknowledged_job(
        self, workers, jobs, tmp_path, serial_small, serial_matrix
    ):
        journal_dir = tmp_path / "serve"
        args = topology_args(workers, jobs)
        proc = start_serve(journal_dir, *args)
        try:
            host, port = read_endpoint(journal_dir, timeout_s=20)
            client = ServeClient(host, port)
            long_job = client.submit("check", MATRIX_CHECK_PARAMS, tenant="a")
            small_job = client.submit("check", CHECK_PARAMS, tenant="b")
            # Let the long campaign journal real progress, then kill -9.
            wait_for_lines(
                journal_dir / "jobs" / f"{long_job}.journal.jsonl", 6
            )
            proc.kill()
            proc.wait(timeout=60)
        finally:
            kill_server(proc)
        # The small job may have been queued (workers=1), running, or done
        # at kill time; whichever it was, recovery owes the bytes.
        recover_and_check(journal_dir, args, {
            long_job: (serial_matrix, True),
            small_job: (serial_small, False),
        })


class TestMidDrainKill:
    @pytest.mark.parametrize("workers,jobs", TOPOLOGIES)
    def test_kill_inside_drain_loses_no_completed_work(
        self, workers, jobs, tmp_path, serial_small
    ):
        journal_dir = tmp_path / "serve"
        args = topology_args(workers, jobs)
        proc = start_serve(
            journal_dir, *args, REPRO_CHAOS_KILL_POINT="mid-drain"
        )
        try:
            host, port = read_endpoint(journal_dir, timeout_s=20)
            client = ServeClient(host, port)
            jobs_done = [
                client.submit("check", CHECK_PARAMS, tenant=t)
                for t in ("a", "b")
            ]
            for job in jobs_done:
                assert client.wait(job, timeout_s=300) == "done"
            try:
                client.drain()
            except ServeError:
                pass  # the drain response may be torn by the exit race
            proc.wait(timeout=60)
            assert proc.returncode == KILL_EXIT
        finally:
            kill_server(proc)
        states = recover_and_check(journal_dir, args, {
            job: (serial_small, False) for job in jobs_done
        })
        assert set(states.values()) == {"done"}


class TestMidCompactionKill:
    """Kill inside compaction — either side of the atomic rename — with
    both a terminal job to archive and a half-finished campaign pending.

    Recovery from the crashed compaction must be indistinguishable from
    recovery on an untouched copy of the same journal taken before the
    compaction ran: same job states, same report bytes.
    """

    @pytest.mark.parametrize("point", ["compact-snapshot", "compact-commit"])
    @pytest.mark.parametrize("workers,jobs", TOPOLOGIES)
    def test_killed_compaction_recovers_like_the_uncompacted_journal(
        self, point, workers, jobs, tmp_path, serial_small, serial_matrix
    ):
        journal_dir = tmp_path / "serve"
        args = topology_args(workers, jobs)
        proc = start_serve(journal_dir, *args)
        try:
            host, port = read_endpoint(journal_dir, timeout_s=20)
            client = ServeClient(host, port)
            # One terminal job for the compactor to archive...
            done_job = client.submit("check", CHECK_PARAMS, tenant="a")
            assert client.wait(done_job, timeout_s=300) == "done"
            # ...and one acknowledged campaign it must carry forward.
            pending_job = client.submit(
                "check", MATRIX_CHECK_PARAMS, tenant="b"
            )
            wait_for_lines(
                journal_dir / "jobs" / f"{pending_job}.journal.jsonl", 6
            )
            proc.kill()
            proc.wait(timeout=60)
        finally:
            kill_server(proc)

        # Snapshot the pre-compaction state for the equivalence claim.
        twin_dir = tmp_path / "twin"
        shutil.copytree(journal_dir, twin_dir)

        # Offline compaction dies at the armed point inside itself.
        compact = run_cli(
            "serve", "--journal-dir", str(journal_dir), "--compact",
            REPRO_CHAOS_KILL_POINT=point,
        )
        assert compact.returncode == KILL_EXIT, compact.stderr.decode()

        expectations = {
            done_job: (serial_small, False),
            pending_job: (serial_matrix, True),
        }
        states = recover_and_check(journal_dir, args, expectations)
        twin_states = recover_and_check(twin_dir, args, expectations)
        assert states == twin_states == {
            done_job: "done", pending_job: "done",
        }

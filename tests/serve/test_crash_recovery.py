"""Chaos matrix for the service: crashes at armed kill points, then recovery.

Every test here kills the serve process somewhere unpleasant — SIGKILL mid
campaign, ``os._exit`` inside a journal append, before an fsync, halfway
through an HTTP response, mid graceful drain — restarts it on the same
journal directory and demands the strongest claim in the tentpole: the
recovered job's final report is byte-identical to an uninterrupted serial
``repro check`` run.
"""

import json
import time

import pytest

from repro.errors import ServeError
from repro.runner import load_journal
from repro.runner.chaos import KILL_EXIT
from repro.serve import ServeClient, read_endpoint
from tests.serve.harness import (
    CHECK_PARAMS,
    LONG_CHECK_PARAMS,
    serial_report_bytes,
    start_serve,
)


@pytest.fixture(scope="module")
def serial_small(tmp_path_factory):
    return serial_report_bytes(tmp_path_factory.mktemp("small"), CHECK_PARAMS)


@pytest.fixture(scope="module")
def serial_long(tmp_path_factory):
    return serial_report_bytes(
        tmp_path_factory.mktemp("long"), LONG_CHECK_PARAMS
    )


def wait_for_lines(path, count, timeout_s=120.0):
    """Block until *path* holds at least *count* journal lines."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if path.exists() and len(path.read_bytes().splitlines()) >= count:
            return
        time.sleep(0.02)
    raise AssertionError(f"{path} never reached {count} lines")


def finish_after_restart(journal_dir, job, reference, expect_resumed=True):
    """Restart the service, wait for *job*, check the report bytes."""
    proc = start_serve(journal_dir)
    try:
        host, port = read_endpoint(journal_dir, timeout_s=20, min_epoch=2)
        client = ServeClient(host, port)
        assert client.wait(job, timeout_s=600) == "done"
        raw = client.report_bytes(job)
        assert raw == reference
        doc = json.loads(raw)
        assert doc["data"]["summary"]["analysis"]["silent_unexplained"] == 0
        if expect_resumed:
            runner = client.runner_doc(job)["data"]
            assert runner["journal"]["resumed"] is True
        client.drain()
        proc.wait(timeout=60)
        assert proc.returncode == 3
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


class TestSigkill:
    def test_sigkill_mid_campaign_resumes_byte_identical(
        self, tmp_path, serial_long
    ):
        journal_dir = tmp_path / "serve"
        proc = start_serve(journal_dir)
        try:
            host, port = read_endpoint(journal_dir, timeout_s=20)
            client = ServeClient(host, port)
            job = client.submit("check", LONG_CHECK_PARAMS)
            # Let the campaign journal real progress, then kill -9.
            wait_for_lines(journal_dir / "jobs" / f"{job}.journal.jsonl", 6)
            proc.kill()
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        finish_after_restart(journal_dir, job, serial_long)


class TestKillPoints:
    # Hit counts are calibrated against the process-wide kill_point counter:
    # server startup costs 2 journal appends / 3 fsyncs (serve journal header
    # + epoch), admission a couple more; a 250-fault campaign then appends
    # ~252 task records with an fsync every 8.  Both counts below therefore
    # land squarely inside the campaign.
    @pytest.mark.parametrize("point,after", [
        ("journal-append", 40),
        ("pre-fsync", 10),
    ])
    def test_crash_inside_the_journal_resumes_byte_identical(
        self, point, after, tmp_path, serial_long
    ):
        journal_dir = tmp_path / "serve"
        proc = start_serve(
            journal_dir,
            REPRO_CHAOS_KILL_POINT=point,
            REPRO_CHAOS_KILL_AFTER=str(after),
        )
        try:
            host, port = read_endpoint(journal_dir, timeout_s=20)
            client = ServeClient(host, port)
            job = client.submit("check", LONG_CHECK_PARAMS)
            proc.wait(timeout=300)
            assert proc.returncode == KILL_EXIT
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        # The torn journal still loads: at worst the final line is truncated.
        load = load_journal(journal_dir / "jobs" / f"{job}.journal.jsonl")
        assert load.corrupt == 0
        finish_after_restart(journal_dir, job, serial_long)

    def test_crash_mid_response_never_loses_an_acknowledged_job(
        self, tmp_path, serial_small
    ):
        journal_dir = tmp_path / "serve"
        proc = start_serve(
            journal_dir,
            REPRO_CHAOS_KILL_POINT="mid-response",
            REPRO_CHAOS_KILL_AFTER="1",
        )
        try:
            host, port = read_endpoint(journal_dir, timeout_s=20)
            client = ServeClient(host, port)
            # Durability precedes acknowledgement: the submission is
            # journalled before the (torn) 202, so the client sees a
            # transport error yet the job survives the crash.
            with pytest.raises(ServeError):
                client.submit("check", CHECK_PARAMS)
            proc.wait(timeout=60)
            assert proc.returncode == KILL_EXIT
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        proc2 = start_serve(journal_dir)
        try:
            host, port = read_endpoint(journal_dir, timeout_s=20, min_epoch=2)
            client2 = ServeClient(host, port)
            assert client2.status()["counters"]["resumed_jobs"] == 1
            assert client2.wait("job-000001", timeout_s=300) == "done"
            assert client2.report_bytes("job-000001") == serial_small
            client2.drain()
            proc2.wait(timeout=60)
        finally:
            if proc2.poll() is None:
                proc2.kill()
                proc2.wait()

    def test_crash_mid_drain_loses_no_completed_work(
        self, tmp_path, serial_small
    ):
        journal_dir = tmp_path / "serve"
        proc = start_serve(
            journal_dir,
            REPRO_CHAOS_KILL_POINT="mid-drain",
        )
        try:
            host, port = read_endpoint(journal_dir, timeout_s=20)
            client = ServeClient(host, port)
            job = client.submit("check", CHECK_PARAMS)
            assert client.wait(job, timeout_s=300) == "done"
            try:
                client.drain()
            except ServeError:
                pass  # the drain response may be torn by the exit race
            proc.wait(timeout=60)
            assert proc.returncode == KILL_EXIT
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        # The terminal record was fsync'd at completion time (the serve
        # journal syncs every append), so the killed drain lost nothing.
        proc2 = start_serve(journal_dir)
        try:
            host, port = read_endpoint(journal_dir, timeout_s=20, min_epoch=2)
            client2 = ServeClient(host, port)
            assert client2.status()["counters"]["resumed_jobs"] == 0
            assert client2.job(job)["state"] == "done"
            assert client2.report_bytes(job) == serial_small
            client2.drain()
            proc2.wait(timeout=60)
        finally:
            if proc2.poll() is None:
                proc2.kill()
                proc2.wait()

"""Chaos matrix for the service: crashes at armed kill points, then recovery.

Every test here kills something somewhere unpleasant — SIGKILL of the whole
server mid campaign, ``os._exit`` inside a journal append or before an
fsync (which, under the supervised-worker architecture, lands in the *job
child*), halfway through an HTTP response, mid graceful drain — and then
demands the strongest claim in the tentpole: the job's final report is
byte-identical to an uninterrupted serial ``repro check`` run.

Crashes in the server itself are recovered by restart; crashes in a job
child are *contained* — the supervisor detects the dead worker, requeues
the job, and the retry resumes the same campaign journal without the
server ever going down.
"""

import json
import time

import pytest

from repro.errors import ServeError
from repro.runner import load_journal
from repro.runner.chaos import KILL_EXIT
from repro.serve import ServeClient, read_endpoint
from tests.serve.harness import (
    CHECK_PARAMS,
    LONG_CHECK_PARAMS,
    serial_report_bytes,
    start_serve,
)


@pytest.fixture(scope="module")
def serial_small(tmp_path_factory):
    return serial_report_bytes(tmp_path_factory.mktemp("small"), CHECK_PARAMS)


@pytest.fixture(scope="module")
def serial_long(tmp_path_factory):
    return serial_report_bytes(
        tmp_path_factory.mktemp("long"), LONG_CHECK_PARAMS
    )


def wait_for_lines(path, count, timeout_s=120.0):
    """Block until *path* holds at least *count* journal lines."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if path.exists() and len(path.read_bytes().splitlines()) >= count:
            return
        time.sleep(0.02)
    raise AssertionError(f"{path} never reached {count} lines")


def finish_after_restart(journal_dir, job, reference, expect_resumed=True):
    """Restart the service, wait for *job*, check the report bytes."""
    proc = start_serve(journal_dir)
    try:
        host, port = read_endpoint(journal_dir, timeout_s=20, min_epoch=2)
        client = ServeClient(host, port)
        assert client.wait(job, timeout_s=600) == "done"
        raw = client.report_bytes(job)
        assert raw == reference
        doc = json.loads(raw)
        assert doc["data"]["summary"]["analysis"]["silent_unexplained"] == 0
        if expect_resumed:
            runner = client.runner_doc(job)["data"]
            assert runner["journal"]["resumed"] is True
        client.drain()
        proc.wait(timeout=60)
        assert proc.returncode == 3
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


class TestSigkill:
    def test_sigkill_mid_campaign_resumes_byte_identical(
        self, tmp_path, serial_long
    ):
        journal_dir = tmp_path / "serve"
        proc = start_serve(journal_dir)
        try:
            host, port = read_endpoint(journal_dir, timeout_s=20)
            client = ServeClient(host, port)
            job = client.submit("check", LONG_CHECK_PARAMS)
            # Let the campaign journal real progress, then kill -9.
            wait_for_lines(journal_dir / "jobs" / f"{job}.journal.jsonl", 6)
            proc.kill()
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        finish_after_restart(journal_dir, job, serial_long)


class TestKillPoints:
    # Hit counts are calibrated against the process-wide kill_point counter
    # (inherited across fork): server startup costs 2 journal appends / a few
    # fsyncs (serve journal header + epoch), admission a couple more; the job
    # child's 250-fault campaign then appends ~252 task records with an fsync
    # every 8.  Both counts below therefore land squarely inside the child's
    # campaign — the server itself never gets near them.
    @pytest.mark.parametrize("point,after", [
        ("journal-append", 40),
        ("pre-fsync", 10),
    ])
    def test_crash_inside_the_journal_is_contained_and_requeued(
        self, point, after, tmp_path, serial_long
    ):
        # The supervised-worker claim: a crash inside the campaign journal
        # kills only the job child.  The supervisor notices the dead worker,
        # requeues the job, and the retry resumes the same journal to a
        # byte-identical report — the server never goes down at all.
        journal_dir = tmp_path / "serve"
        marker = tmp_path / "chaos-fired"
        proc = start_serve(
            journal_dir,
            REPRO_CHAOS_KILL_POINT=point,
            REPRO_CHAOS_KILL_AFTER=str(after),
            REPRO_CHAOS_KILL_MARKER=str(marker),
        )
        try:
            host, port = read_endpoint(journal_dir, timeout_s=20)
            client = ServeClient(host, port)
            job = client.submit("check", LONG_CHECK_PARAMS)
            # The once-marker appears the instant the child dies at the
            # armed point (and disarms it for the requeued attempt).
            deadline = time.monotonic() + 300
            while not marker.exists():
                assert time.monotonic() < deadline, "kill point never fired"
                time.sleep(0.05)
            assert proc.poll() is None, "crash was not contained to the child"
            assert client.wait(job, timeout_s=600) == "done"
            status = client.status()
            assert status["epoch"] == 1  # same server, no restart
            assert status["counters"]["requeued"] >= 1
            reasons = {
                event["reason"] for event in client.events("job_requeued")
            }
            assert "crash" in reasons
            raw = client.report_bytes(job)
            assert raw == serial_long
            runner = client.runner_doc(job)["data"]
            assert runner["journal"]["resumed"] is True
            client.drain()
            proc.wait(timeout=60)
            assert proc.returncode == 3
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        # The torn journal still loads: at worst the final line is truncated.
        load = load_journal(journal_dir / "jobs" / f"{job}.journal.jsonl")
        assert load.corrupt == 0

    def test_crash_mid_response_never_loses_an_acknowledged_job(
        self, tmp_path, serial_small
    ):
        journal_dir = tmp_path / "serve"
        proc = start_serve(
            journal_dir,
            REPRO_CHAOS_KILL_POINT="mid-response",
            REPRO_CHAOS_KILL_AFTER="1",
        )
        try:
            host, port = read_endpoint(journal_dir, timeout_s=20)
            client = ServeClient(host, port)
            # Durability precedes acknowledgement: the submission is
            # journalled before the (torn) 202, so the client sees a
            # transport error yet the job survives the crash.
            with pytest.raises(ServeError):
                client.submit("check", CHECK_PARAMS)
            proc.wait(timeout=60)
            assert proc.returncode == KILL_EXIT
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        proc2 = start_serve(journal_dir)
        try:
            host, port = read_endpoint(journal_dir, timeout_s=20, min_epoch=2)
            client2 = ServeClient(host, port)
            assert client2.status()["counters"]["resumed_jobs"] == 1
            assert client2.wait("job-000001", timeout_s=300) == "done"
            assert client2.report_bytes("job-000001") == serial_small
            client2.drain()
            proc2.wait(timeout=60)
        finally:
            if proc2.poll() is None:
                proc2.kill()
                proc2.wait()

    def test_crash_mid_drain_loses_no_completed_work(
        self, tmp_path, serial_small
    ):
        journal_dir = tmp_path / "serve"
        proc = start_serve(
            journal_dir,
            REPRO_CHAOS_KILL_POINT="mid-drain",
        )
        try:
            host, port = read_endpoint(journal_dir, timeout_s=20)
            client = ServeClient(host, port)
            job = client.submit("check", CHECK_PARAMS)
            assert client.wait(job, timeout_s=300) == "done"
            try:
                client.drain()
            except ServeError:
                pass  # the drain response may be torn by the exit race
            proc.wait(timeout=60)
            assert proc.returncode == KILL_EXIT
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        # The terminal record was fsync'd at completion time (the serve
        # journal syncs every append), so the killed drain lost nothing.
        proc2 = start_serve(journal_dir)
        try:
            host, port = read_endpoint(journal_dir, timeout_s=20, min_epoch=2)
            client2 = ServeClient(host, port)
            assert client2.status()["counters"]["resumed_jobs"] == 0
            assert client2.job(job)["state"] == "done"
            assert client2.report_bytes(job) == serial_small
            client2.drain()
            proc2.wait(timeout=60)
        finally:
            if proc2.poll() is None:
                proc2.kill()
                proc2.wait()

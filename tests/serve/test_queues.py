"""Admission control: bounded per-tenant queues, round-robin dispatch."""

import pytest

from repro.errors import ServeRejected
from repro.serve import JobSpec, TenantQueues


def spec(n: int, tenant: str = "default") -> JobSpec:
    return JobSpec(job=f"job-{n:06d}", tenant=tenant, verb="check", seq=n)


class TestAdmission:
    def test_admit_within_bound(self):
        queues = TenantQueues(max_depth=2)
        assert queues.admit(spec(1), 1.0) == 1
        assert queues.admit(spec(2), 1.0) == 2
        assert queues.total() == 2

    def test_depth_bound_rejects(self):
        queues = TenantQueues(max_depth=1)
        queues.admit(spec(1), 1.0)
        with pytest.raises(ServeRejected) as info:
            queues.admit(spec(2), 7.5)
        assert info.value.reason == "queue_full"
        assert info.value.retry_after_s == 7.5

    def test_tenant_bound_rejects_new_tenants_only(self):
        queues = TenantQueues(max_depth=4, max_tenants=1)
        queues.admit(spec(1, "a"), 1.0)
        with pytest.raises(ServeRejected):
            queues.admit(spec(2, "b"), 1.0)
        # The existing tenant still has queue room.
        queues.admit(spec(3, "a"), 1.0)

    def test_bound_frees_up_after_pop(self):
        queues = TenantQueues(max_depth=1)
        queues.admit(spec(1), 1.0)
        assert queues.next_job().job == "job-000001"
        queues.admit(spec(2), 1.0)

    def test_requeue_bypasses_bounds(self):
        # Restart recovery re-enqueues jobs admitted by earlier epochs.
        queues = TenantQueues(max_depth=1)
        queues.requeue(spec(1))
        queues.requeue(spec(2))
        assert queues.total() == 2

    def test_check_does_not_mutate(self):
        queues = TenantQueues(max_depth=1)
        queues.check("default", 1.0)
        assert queues.total() == 0
        assert queues.tenants() == []


class TestDispatch:
    def test_fifo_within_tenant(self):
        queues = TenantQueues()
        for n in (1, 2, 3):
            queues.admit(spec(n), 1.0)
        assert [queues.next_job().seq for _ in range(3)] == [1, 2, 3]
        assert queues.next_job() is None

    def test_round_robin_across_tenants(self):
        queues = TenantQueues()
        # Tenant a floods; tenant b submits one job.
        for n in (1, 2, 3):
            queues.admit(spec(n, "a"), 1.0)
        queues.admit(spec(4, "b"), 1.0)
        order = [queues.next_job() for _ in range(4)]
        tenants = [job.tenant for job in order]
        # b's single job is served before a's queue drains.
        assert tenants.index("b") < 3
        assert sorted(job.seq for job in order) == [1, 2, 3, 4]

    def test_high_water_tracks_peak(self):
        queues = TenantQueues()
        queues.admit(spec(1), 1.0)
        queues.admit(spec(2), 1.0)
        queues.next_job()
        queues.next_job()
        queues.admit(spec(3), 1.0)
        assert queues.high_water == 2

"""Admission control: bounded queues, weighted fair dispatch, in-flight caps.

The weighted round-robin properties the module docstring claims —
proportional share over a weight cycle, a concrete starvation bound —
are asserted here under seeded bursty arrivals, not trusted.
"""

import math
import random

import pytest

from repro.errors import ServeRejected
from repro.serve import JobSpec, TenantQueues


def spec(n: int, tenant: str = "default") -> JobSpec:
    return JobSpec(job=f"job-{n:06d}", tenant=tenant, verb="check", seq=n)


class TestAdmission:
    def test_admit_within_bound(self):
        queues = TenantQueues(max_depth=2)
        assert queues.admit(spec(1), 1.0) == 1
        assert queues.admit(spec(2), 1.0) == 2
        assert queues.total() == 2

    def test_depth_bound_rejects(self):
        queues = TenantQueues(max_depth=1)
        queues.admit(spec(1), 1.0)
        with pytest.raises(ServeRejected) as info:
            queues.admit(spec(2), 7.5)
        assert info.value.reason == "queue_full"
        assert info.value.retry_after_s == 7.5

    def test_tenant_bound_rejects_new_tenants_only(self):
        queues = TenantQueues(max_depth=4, max_tenants=1)
        queues.admit(spec(1, "a"), 1.0)
        with pytest.raises(ServeRejected):
            queues.admit(spec(2, "b"), 1.0)
        # The existing tenant still has queue room.
        queues.admit(spec(3, "a"), 1.0)

    def test_bound_frees_up_after_pop(self):
        queues = TenantQueues(max_depth=1)
        queues.admit(spec(1), 1.0)
        assert queues.next_job().job == "job-000001"
        queues.admit(spec(2), 1.0)

    def test_requeue_bypasses_bounds(self):
        # Restart recovery re-enqueues jobs admitted by earlier epochs.
        queues = TenantQueues(max_depth=1)
        queues.requeue(spec(1))
        queues.requeue(spec(2))
        assert queues.total() == 2

    def test_check_does_not_mutate(self):
        queues = TenantQueues(max_depth=1)
        queues.check("default", 1.0)
        assert queues.total() == 0
        assert queues.tenants() == []


class TestDispatch:
    def test_fifo_within_tenant(self):
        queues = TenantQueues()
        for n in (1, 2, 3):
            queues.admit(spec(n), 1.0)
        assert [queues.next_job().seq for _ in range(3)] == [1, 2, 3]
        assert queues.next_job() is None

    def test_round_robin_across_tenants(self):
        queues = TenantQueues()
        # Tenant a floods; tenant b submits one job.
        for n in (1, 2, 3):
            queues.admit(spec(n, "a"), 1.0)
        queues.admit(spec(4, "b"), 1.0)
        order = [queues.next_job() for _ in range(4)]
        tenants = [job.tenant for job in order]
        # b's single job is served before a's queue drains.
        assert tenants.index("b") < 3
        assert sorted(job.seq for job in order) == [1, 2, 3, 4]

    def test_high_water_tracks_peak(self):
        queues = TenantQueues()
        queues.admit(spec(1), 1.0)
        queues.admit(spec(2), 1.0)
        queues.next_job()
        queues.next_job()
        queues.admit(spec(3), 1.0)
        assert queues.high_water == 2


class TestWeightedFairness:
    """The smooth-WRR contract, asserted rather than claimed."""

    WEIGHTS = {"a": 3, "b": 2, "c": 1}

    def _saturated(self, weights) -> TenantQueues:
        """Queues where every tenant always has backlog (static eligible set)."""
        queues = TenantQueues(max_depth=10_000, weights=weights)
        n = 0
        for tenant in weights:
            for _ in range(2_000):
                n += 1
                queues.requeue(spec(n, tenant))
        return queues

    def test_proportional_share_is_exact_per_cycle(self):
        # Over any run of K*W dispatches against a static backlog, tenant t
        # is served exactly K*w_t times — proportionality is not asymptotic,
        # it holds cycle by cycle.
        queues = self._saturated(self.WEIGHTS)
        cycle = sum(self.WEIGHTS.values())
        for _ in range(20):
            served = [queues.next_job().tenant for _ in range(cycle)]
            for tenant in served:
                queues.release(tenant)
            assert {t: served.count(t) for t in self.WEIGHTS} == self.WEIGHTS

    def test_starvation_bound(self):
        # A continuously backlogged tenant waits at most
        # 2*ceil(W / w_t) - 1 dispatches between consecutive services.
        weights = {"noisy": 7, "meek": 1}
        queues = self._saturated(weights)
        cycle = sum(weights.values())
        gaps = {t: 0 for t in weights}
        worst = {t: 0 for t in weights}
        for _ in range(40 * cycle):
            tenant = queues.next_job().tenant
            queues.release(tenant)
            for other in weights:
                if other == tenant:
                    worst[other] = max(worst[other], gaps[other])
                    gaps[other] = 0
                else:
                    gaps[other] += 1
        for tenant, weight in weights.items():
            bound = 2 * math.ceil(cycle / weight) - 1
            assert worst[tenant] <= bound, (
                f"{tenant} (weight {weight}) starved for {worst[tenant]} "
                f"dispatches, bound is {bound}"
            )

    def test_starvation_bound_under_seeded_bursty_arrivals(self):
        # Dynamic eligible sets: tenants arrive in bursts and drain, so the
        # per-dispatch total weight W fluctuates.  The bound still holds in
        # its conservative form 2*ceil(W_max / w_t) for any tenant that
        # stayed eligible across the whole gap.
        weights = {"a": 4, "b": 2, "c": 1, "d": 1}
        w_max = sum(weights.values())
        rng = random.Random(1234)
        queues = TenantQueues(max_depth=10_000, weights=weights)
        n = 0
        gaps = {t: 0 for t in weights}
        for step in range(5_000):
            # Bursty arrivals: occasionally one tenant floods.
            if rng.random() < 0.3:
                tenant = rng.choice(sorted(weights))
                for _ in range(rng.randrange(1, 8)):
                    n += 1
                    queues.requeue(spec(n, tenant))
            eligible_before = {
                t for t in weights if queues.depth(t) > 0
            }
            job = queues.next_job()
            if job is None:
                continue
            queues.release(job.tenant)
            for tenant in weights:
                if tenant == job.tenant:
                    gaps[tenant] = 0
                elif tenant in eligible_before:
                    gaps[tenant] += 1
                    bound = 2 * math.ceil(w_max / weights[tenant])
                    assert gaps[tenant] <= bound, (
                        f"step {step}: {tenant} starved for {gaps[tenant]} "
                        f"eligible dispatches (bound {bound})"
                    )
                else:
                    gaps[tenant] = 0  # ineligible stretches reset the clock

    def test_no_banked_credit_for_empty_tenants(self):
        # A tenant that drains loses its credit: returning later, it cannot
        # claim a catch-up burst for the dispatches it sat out.
        queues = TenantQueues(max_depth=100, weights={"a": 1, "b": 1})
        queues.requeue(spec(1, "a"))
        assert queues.next_job().tenant == "a"
        queues.release("a")
        # b alone for a long stretch...
        for n in range(2, 12):
            queues.requeue(spec(n, "b"))
        for _ in range(10):
            queues.release(queues.next_job().tenant)
        # ...then both with backlog again: strict alternation, no burst.
        for n in range(20, 26):
            queues.requeue(spec(n, "a" if n % 2 else "b"))
        served = [queues.next_job().tenant for _ in range(6)]
        assert served.count("a") == 3 and served.count("b") == 3
        assert all(served[i] != served[i + 1] for i in range(5))


class TestInflightCaps:
    def test_cap_suspends_dispatch_until_release(self):
        queues = TenantQueues(max_depth=100, max_inflight=2)
        for n in (1, 2, 3):
            queues.requeue(spec(n, "a"))
        assert queues.next_job().seq == 1
        assert queues.next_job().seq == 2
        # Tenant a is at its cap: its third job must wait.
        assert queues.next_job() is None
        assert queues.inflight("a") == 2
        queues.release("a")
        assert queues.next_job().seq == 3

    def test_cap_is_per_tenant(self):
        queues = TenantQueues(max_depth=100, max_inflight=1)
        queues.requeue(spec(1, "a"))
        queues.requeue(spec(2, "a"))
        queues.requeue(spec(3, "b"))
        assert queues.next_job().tenant == "a"
        # a is capped; b is not.
        assert queues.next_job().tenant == "b"
        assert queues.next_job() is None
        queues.release("a")
        assert queues.next_job().seq == 2

    def test_capped_tenant_accrues_no_credit(self):
        # While capped, a tenant is simply not in the eligible set — after
        # release it resumes its fair share instead of a priority burst.
        queues = TenantQueues(max_depth=100, max_inflight=1,
                              weights={"a": 1, "b": 1})
        for n in range(1, 6):
            queues.requeue(spec(n, "a"))
        for n in range(6, 11):
            queues.requeue(spec(n, "b"))
        first = queues.next_job()  # a (lexicographic tie-break)
        assert first.tenant == "a"
        # a capped: b gets the next dispatches, releasing each immediately.
        assert queues.next_job().tenant == "b"
        queues.release("b")
        assert queues.next_job().tenant == "b"
        queues.release("b")
        queues.release("a")
        # Fair alternation resumes; a gets no multi-dispatch catch-up.
        seq = []
        for _ in range(4):
            job = queues.next_job()
            seq.append(job.tenant)
            queues.release(job.tenant)
        assert seq.count("a") == 2

    def test_requeue_front_preserves_recovery_order(self):
        queues = TenantQueues(max_depth=100)
        queues.requeue(spec(1, "a"))
        queues.requeue(spec(2, "a"))
        job = queues.next_job()
        assert job.seq == 1
        queues.release("a")
        queues.requeue_front(job)
        # The supervision-requeued job dispatches before younger work.
        assert queues.next_job().seq == 1
        assert queues.next_job().seq == 2

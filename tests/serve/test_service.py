"""End-to-end service behaviour over real sockets and processes.

Covers the serve API surface (ping/submit/status/report/events), admission
control under overload (429 + ``Retry-After`` + bounded state), and the
graceful-drain contract (exit 3, in-flight work journalled, queued work
preserved and resumed by the next epoch).
"""

import json
import os
import time

import pytest

from repro.errors import ServeRejected
from repro.serve import ServeClient, read_endpoint
from tests.serve.harness import (
    CHECK_PARAMS,
    LONG_CHECK_PARAMS,
    serial_report_bytes,
    start_serve,
)


@pytest.fixture
def serve(tmp_path):
    """A running service on an ephemeral port; drained at teardown."""
    journal_dir = tmp_path / "serve"
    proc = start_serve(journal_dir)
    host, port = read_endpoint(journal_dir, timeout_s=20)
    client = ServeClient(host, port)
    yield journal_dir, client, proc
    if proc.poll() is None:
        try:
            client.drain()
            proc.wait(timeout=60)
        except Exception:  # noqa: BLE001 - teardown best effort
            proc.kill()
            proc.wait()


class TestApi:
    def test_ping_and_status(self, serve):
        _journal_dir, client, _proc = serve
        ping = client.ping()
        assert ping["ok"] is True
        assert ping["epoch"] == 1
        status = client.status()
        assert status["draining"] is False
        assert status["counters"]["submitted"] == 0

    def test_check_job_report_matches_cli_bytes(self, serve, tmp_path):
        _journal_dir, client, _proc = serve
        job = client.submit("check", CHECK_PARAMS)
        assert client.wait(job, timeout_s=120) == "done"
        assert client.report_bytes(job) == serial_report_bytes(
            tmp_path, CHECK_PARAMS
        )
        doc = json.loads(client.report_bytes(job))
        assert doc["kind"] == "fault-campaign"

    def test_runner_doc_carries_serve_counters(self, serve):
        _journal_dir, client, _proc = serve
        job = client.submit("check", CHECK_PARAMS)
        client.wait(job, timeout_s=120)
        doc = client.runner_doc(job)
        assert doc["schema"] == "repro.runner/1"
        data = doc["data"]
        assert data["journal"]["resumed"] is False
        assert data["journal"]["corrupt_records_skipped"] == 0
        assert data["serve"]["submitted"] == 1
        assert data["serve"]["epoch"] == 1
        assert data["serve"]["queue_high_water"] >= 1

    def test_profile_job(self, serve):
        _journal_dir, client, _proc = serve
        job = client.submit("profile", {"kernel": "DotProduct"})
        assert client.wait(job, timeout_s=120) == "done"
        doc = json.loads(client.report_bytes(job))
        assert doc["kind"] == "kernel-profile"
        assert doc["data"]["kernel"] == "DotProduct"

    def test_events_stream(self, serve):
        _journal_dir, client, _proc = serve
        job = client.submit("check", CHECK_PARAMS)
        client.wait(job, timeout_s=120)
        topics = [event["topic"] for event in client.events()]
        assert topics[:3] == ["job_submitted", "job_started", "job_done"]
        done = client.events(topic="job_done")
        assert [e["job"] for e in done] == [job]
        # since= pagination: everything already seen is excluded.
        assert client.events(since=done[-1]["seq"]) == []

    def test_unknown_job_and_bad_requests(self, serve):
        from repro.errors import ServeError

        _journal_dir, client, _proc = serve
        with pytest.raises(ServeError):
            client.job("job-999999")
        with pytest.raises(ServeError):
            client.submit("frobnicate", {})


class TestAdmissionControl:
    def test_overload_gets_429_with_retry_after(self, serve):
        journal_dir, client, _proc = serve
        first = client.submit("check", LONG_CHECK_PARAMS)
        # Wait until the worker picks it up, so the queue bound applies to
        # genuinely queued jobs behind a busy worker.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if client.job(first)["state"] == "running":
                break
            time.sleep(0.02)
        queued = []
        rejected = None
        for _ in range(12):  # default --queue-depth is 8
            try:
                queued.append(client.submit("check", LONG_CHECK_PARAMS))
            except ServeRejected as exc:
                rejected = exc
                break
        assert rejected is not None, "queue bound never enforced"
        assert rejected.reason == "queue_full"
        assert rejected.retry_after_s >= 1.0
        status = client.status()
        assert status["counters"]["rejected"] >= 1
        # Bounded state: journalled admissions == accepted submissions only.
        admitted = [
            line for line in
            (journal_dir / "serve.jsonl").read_bytes().splitlines()
            if b'"type":"job"' in line
        ]
        assert len(admitted) == 1 + len(queued)
        rejects = client.events(topic="job_rejected")
        assert rejects and rejects[-1]["reason"] == "queue_full"


class TestGracefulDrain:
    def test_drain_exits_3_preserving_all_work(self, serve, tmp_path):
        journal_dir, client, proc = serve
        running = client.submit("check", LONG_CHECK_PARAMS)
        queued = client.submit("check", CHECK_PARAMS)
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if client.job(running)["state"] == "running":
                break
            time.sleep(0.02)
        job_journal = journal_dir / "jobs" / f"{running}.journal.jsonl"
        while time.monotonic() < deadline:
            if job_journal.exists() and len(job_journal.read_bytes().splitlines()) >= 4:
                break
            time.sleep(0.02)

        drain = client.drain()
        assert drain["draining"] is True
        proc.wait(timeout=60)
        assert proc.returncode == 3

        # Submissions during a drain would have been 429 "draining"; after
        # exit the socket is gone entirely — state on disk is what counts:
        # neither job got a terminal record, both must resume.
        raw = (journal_dir / "serve.jsonl").read_bytes()
        assert b'"type":"job_done"' not in raw
        # The aborted campaign flushed a loadable journal.
        from repro.runner import load_journal

        load = load_journal(job_journal)
        assert not load.truncated
        assert load.corrupt == 0
        # Open spans exported as aborted for the interrupted job.
        spans_file = journal_dir / "jobs" / f"{running}.spans.1.jsonl"
        assert spans_file.exists()
        spans = [json.loads(line) for line in spans_file.open()][1:]
        root = next(s for s in spans if s["name"].startswith("serve:job"))
        assert root["status"]["code"] == "STATUS_CODE_ERROR"

        # Epoch 2 recovers both jobs and finishes them byte-identically.
        proc2 = start_serve(journal_dir)
        try:
            host, port = read_endpoint(journal_dir, timeout_s=20, min_epoch=2)
            client2 = ServeClient(host, port)
            assert client2.status()["counters"]["resumed_jobs"] == 2
            assert client2.wait(running, timeout_s=300) == "done"
            assert client2.wait(queued, timeout_s=300) == "done"
            assert client2.report_bytes(running) == serial_report_bytes(
                tmp_path, LONG_CHECK_PARAMS
            )
            resumed_doc = client2.runner_doc(running)["data"]
            assert resumed_doc["journal"]["resumed"] is True
            assert resumed_doc["journal"]["resumed_tasks"] > 0
            client2.drain()
            proc2.wait(timeout=60)
            assert proc2.returncode == 3
        finally:
            if proc2.poll() is None:
                proc2.kill()
                proc2.wait()

    def test_sigterm_drains_like_the_endpoint(self, serve):
        import signal as signal_module

        journal_dir, client, proc = serve
        client.submit("check", CHECK_PARAMS)
        proc.send_signal(signal_module.SIGTERM)
        proc.wait(timeout=60)
        assert proc.returncode == 3
        # The journal survived the drain intact.
        from repro.runner import load_journal

        load = load_journal(journal_dir / "serve.jsonl")
        assert not load.truncated
        assert load.header["fingerprint"] == {"verb": "serve"}


class TestMultiWorker:
    """Genuine concurrency: --workers M jobs run at the same time."""

    def test_probe_jobs_overlap_on_two_workers(self, tmp_path):
        journal_dir = tmp_path / "serve"
        proc = start_serve(journal_dir, "--workers", "2")
        try:
            host, port = read_endpoint(journal_dir, timeout_s=20)
            client = ServeClient(host, port)
            started = time.monotonic()
            jobs = [client.submit("probe", {"duration_s": 0.8})
                    for _ in range(2)]
            for job in jobs:
                assert client.wait(job, timeout_s=30) == "done"
            wall = time.monotonic() - started
            # Two 0.8s sleeps serially take >= 1.6s; overlapped they fit
            # well under that even with dispatch overhead.
            assert wall < 1.45, f"probes did not overlap (wall {wall:.2f}s)"
            client.drain()
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    def test_status_surfaces_workers_queues_and_journal(self, tmp_path):
        journal_dir = tmp_path / "serve"
        proc = start_serve(journal_dir, "--workers", "2", "--jobs", "2",
                           "--tenant-weight", "vip=3", "--max-inflight", "2")
        try:
            host, port = read_endpoint(journal_dir, timeout_s=20)
            client = ServeClient(host, port)
            job = client.submit("probe", {"duration_s": 1.0}, tenant="vip")
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                status = client.status()
                if status["workers"]["busy"] >= 1:
                    break
                time.sleep(0.02)
            assert status["workers"]["configured"] == 2
            assert status["workers"]["jobs_per_campaign"] == 2
            assert status["workers"]["max_inflight"] == 2
            running = {entry["job"]: entry for entry in status["running"]}
            assert running[job]["tenant"] == "vip"
            assert running[job]["attempt"] == 1
            assert running[job]["pid"] is None or running[job]["pid"] > 0
            assert status["queues"]["vip"]["weight"] == 3
            assert status["queues"]["vip"]["inflight"] == 1
            assert status["journal"]["records"] >= 2
            assert status["events"]["dropped"] == 0
            assert client.wait(job, timeout_s=30) == "done"
            client.drain()
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()


class TestEventsRing:
    def test_ring_drops_are_surfaced_not_silent(self, tmp_path):
        # In-process: overflow the ring without paying for 1000 HTTP jobs.
        from repro.obs.events import JobSubmittedEvent
        from repro.serve.app import EVENT_RING, ServeApp
        from repro.serve.http import Request

        app = ServeApp(tmp_path / "ring")
        try:
            for n in range(EVENT_RING + 25):
                app.bus.emit("job_submitted", JobSubmittedEvent(
                    job=f"job-{n:06d}", tenant="t", verb="probe", depth=1,
                ))
            status = app._status()
            assert status["events"]["dropped"] == 25
            assert status["events"]["oldest_seq"] == 26
            raw = app._events_body(Request(method="GET", path="/v1/events"))
            head = raw.split(b"\r\n\r\n", 1)[0].decode("latin-1")
            assert "X-Repro-Events-Dropped: 25" in head
            assert "X-Repro-Events-Oldest-Seq: 26" in head
        finally:
            app.store.close()


class TestSubmitRetry:
    def test_retries_honor_retry_after_with_cap_and_jitter(self, monkeypatch):
        import random

        from repro.serve import SubmitRetry
        from repro.serve.client import ServeClient

        client = ServeClient("127.0.0.1", 1)
        rejections = [ServeRejected("queue_full", 12.0),
                      ServeRejected("queue_full", 2.0)]

        def fake_json(method, path, payload=None):
            if rejections:
                raise rejections.pop(0)
            return {"data": {"job": "job-000042"}}

        sleeps = []
        monkeypatch.setattr(client, "_json", fake_json)
        monkeypatch.setattr("repro.serve.client.time.sleep", sleeps.append)
        policy = SubmitRetry(budget_s=30.0, max_attempts=6,
                             cap_s=5.0, jitter=0.25)
        job = client.submit("probe", {}, retry=policy,
                            rng=random.Random(7))
        assert job == "job-000042"
        assert len(sleeps) == 2
        # First hint (12s) is capped at 5s, then jittered within +-25%.
        assert 5.0 * 0.75 <= sleeps[0] <= 5.0 * 1.25
        assert 2.0 * 0.75 <= sleeps[1] <= 2.0 * 1.25

    def test_attempt_budget_reraises_last_rejection(self, monkeypatch):
        from repro.serve import SubmitRetry
        from repro.serve.client import ServeClient

        client = ServeClient("127.0.0.1", 1)

        def always_reject(method, path, payload=None):
            raise ServeRejected("queue_full", 0.01)

        monkeypatch.setattr(client, "_json", always_reject)
        monkeypatch.setattr("repro.serve.client.time.sleep", lambda _s: None)
        with pytest.raises(ServeRejected) as info:
            client.submit("probe", {},
                          retry=SubmitRetry(max_attempts=3, budget_s=30.0))
        assert info.value.reason == "queue_full"

    def test_wall_clock_budget_stops_retrying(self, monkeypatch):
        from repro.serve import SubmitRetry
        from repro.serve.client import ServeClient

        client = ServeClient("127.0.0.1", 1)

        def always_reject(method, path, payload=None):
            raise ServeRejected("queue_full", 60.0)

        monkeypatch.setattr(client, "_json", always_reject)
        slept = []
        monkeypatch.setattr("repro.serve.client.time.sleep", slept.append)
        # Budget smaller than any capped delay: one attempt, no sleeps.
        with pytest.raises(ServeRejected):
            client.submit("probe", {},
                          retry=SubmitRetry(budget_s=0.5, max_attempts=10,
                                            cap_s=5.0, jitter=0.0))
        assert slept == []

"""End-to-end service behaviour over real sockets and processes.

Covers the serve API surface (ping/submit/status/report/events), admission
control under overload (429 + ``Retry-After`` + bounded state), and the
graceful-drain contract (exit 3, in-flight work journalled, queued work
preserved and resumed by the next epoch).
"""

import json
import os
import time

import pytest

from repro.errors import ServeRejected
from repro.serve import ServeClient, read_endpoint
from tests.serve.harness import (
    CHECK_PARAMS,
    LONG_CHECK_PARAMS,
    serial_report_bytes,
    start_serve,
)


@pytest.fixture
def serve(tmp_path):
    """A running service on an ephemeral port; drained at teardown."""
    journal_dir = tmp_path / "serve"
    proc = start_serve(journal_dir)
    host, port = read_endpoint(journal_dir, timeout_s=20)
    client = ServeClient(host, port)
    yield journal_dir, client, proc
    if proc.poll() is None:
        try:
            client.drain()
            proc.wait(timeout=60)
        except Exception:  # noqa: BLE001 - teardown best effort
            proc.kill()
            proc.wait()


class TestApi:
    def test_ping_and_status(self, serve):
        _journal_dir, client, _proc = serve
        ping = client.ping()
        assert ping["ok"] is True
        assert ping["epoch"] == 1
        status = client.status()
        assert status["draining"] is False
        assert status["counters"]["submitted"] == 0

    def test_check_job_report_matches_cli_bytes(self, serve, tmp_path):
        _journal_dir, client, _proc = serve
        job = client.submit("check", CHECK_PARAMS)
        assert client.wait(job, timeout_s=120) == "done"
        assert client.report_bytes(job) == serial_report_bytes(
            tmp_path, CHECK_PARAMS
        )
        doc = json.loads(client.report_bytes(job))
        assert doc["kind"] == "fault-campaign"

    def test_runner_doc_carries_serve_counters(self, serve):
        _journal_dir, client, _proc = serve
        job = client.submit("check", CHECK_PARAMS)
        client.wait(job, timeout_s=120)
        doc = client.runner_doc(job)
        assert doc["schema"] == "repro.runner/1"
        data = doc["data"]
        assert data["journal"]["resumed"] is False
        assert data["journal"]["corrupt_records_skipped"] == 0
        assert data["serve"]["submitted"] == 1
        assert data["serve"]["epoch"] == 1
        assert data["serve"]["queue_high_water"] >= 1

    def test_profile_job(self, serve):
        _journal_dir, client, _proc = serve
        job = client.submit("profile", {"kernel": "DotProduct"})
        assert client.wait(job, timeout_s=120) == "done"
        doc = json.loads(client.report_bytes(job))
        assert doc["kind"] == "kernel-profile"
        assert doc["data"]["kernel"] == "DotProduct"

    def test_events_stream(self, serve):
        _journal_dir, client, _proc = serve
        job = client.submit("check", CHECK_PARAMS)
        client.wait(job, timeout_s=120)
        topics = [event["topic"] for event in client.events()]
        assert topics[:3] == ["job_submitted", "job_started", "job_done"]
        done = client.events(topic="job_done")
        assert [e["job"] for e in done] == [job]
        # since= pagination: everything already seen is excluded.
        assert client.events(since=done[-1]["seq"]) == []

    def test_unknown_job_and_bad_requests(self, serve):
        from repro.errors import ServeError

        _journal_dir, client, _proc = serve
        with pytest.raises(ServeError):
            client.job("job-999999")
        with pytest.raises(ServeError):
            client.submit("frobnicate", {})


class TestAdmissionControl:
    def test_overload_gets_429_with_retry_after(self, serve):
        journal_dir, client, _proc = serve
        first = client.submit("check", LONG_CHECK_PARAMS)
        # Wait until the worker picks it up, so the queue bound applies to
        # genuinely queued jobs behind a busy worker.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if client.job(first)["state"] == "running":
                break
            time.sleep(0.02)
        queued = []
        rejected = None
        for _ in range(12):  # default --queue-depth is 8
            try:
                queued.append(client.submit("check", LONG_CHECK_PARAMS))
            except ServeRejected as exc:
                rejected = exc
                break
        assert rejected is not None, "queue bound never enforced"
        assert rejected.reason == "queue_full"
        assert rejected.retry_after_s >= 1.0
        status = client.status()
        assert status["counters"]["rejected"] >= 1
        # Bounded state: journalled admissions == accepted submissions only.
        admitted = [
            line for line in
            (journal_dir / "serve.jsonl").read_bytes().splitlines()
            if b'"type":"job"' in line
        ]
        assert len(admitted) == 1 + len(queued)
        rejects = client.events(topic="job_rejected")
        assert rejects and rejects[-1]["reason"] == "queue_full"


class TestGracefulDrain:
    def test_drain_exits_3_preserving_all_work(self, serve, tmp_path):
        journal_dir, client, proc = serve
        running = client.submit("check", LONG_CHECK_PARAMS)
        queued = client.submit("check", CHECK_PARAMS)
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if client.job(running)["state"] == "running":
                break
            time.sleep(0.02)
        job_journal = journal_dir / "jobs" / f"{running}.journal.jsonl"
        while time.monotonic() < deadline:
            if job_journal.exists() and len(job_journal.read_bytes().splitlines()) >= 4:
                break
            time.sleep(0.02)

        drain = client.drain()
        assert drain["draining"] is True
        proc.wait(timeout=60)
        assert proc.returncode == 3

        # Submissions during a drain would have been 429 "draining"; after
        # exit the socket is gone entirely — state on disk is what counts:
        # neither job got a terminal record, both must resume.
        raw = (journal_dir / "serve.jsonl").read_bytes()
        assert b'"type":"job_done"' not in raw
        # The aborted campaign flushed a loadable journal.
        from repro.runner import load_journal

        load = load_journal(job_journal)
        assert not load.truncated
        assert load.corrupt == 0
        # Open spans exported as aborted for the interrupted job.
        spans_file = journal_dir / "jobs" / f"{running}.spans.1.jsonl"
        assert spans_file.exists()
        spans = [json.loads(line) for line in spans_file.open()][1:]
        root = next(s for s in spans if s["name"].startswith("serve:job"))
        assert root["status"]["code"] == "STATUS_CODE_ERROR"

        # Epoch 2 recovers both jobs and finishes them byte-identically.
        proc2 = start_serve(journal_dir)
        try:
            host, port = read_endpoint(journal_dir, timeout_s=20, min_epoch=2)
            client2 = ServeClient(host, port)
            assert client2.status()["counters"]["resumed_jobs"] == 2
            assert client2.wait(running, timeout_s=300) == "done"
            assert client2.wait(queued, timeout_s=300) == "done"
            assert client2.report_bytes(running) == serial_report_bytes(
                tmp_path, LONG_CHECK_PARAMS
            )
            resumed_doc = client2.runner_doc(running)["data"]
            assert resumed_doc["journal"]["resumed"] is True
            assert resumed_doc["journal"]["resumed_tasks"] > 0
            client2.drain()
            proc2.wait(timeout=60)
            assert proc2.returncode == 3
        finally:
            if proc2.poll() is None:
                proc2.kill()
                proc2.wait()

    def test_sigterm_drains_like_the_endpoint(self, serve):
        import signal as signal_module

        journal_dir, client, proc = serve
        client.submit("check", CHECK_PARAMS)
        proc.send_signal(signal_module.SIGTERM)
        proc.wait(timeout=60)
        assert proc.returncode == 3
        # The journal survived the drain intact.
        from repro.runner import load_journal

        load = load_journal(journal_dir / "serve.jsonl")
        assert not load.truncated
        assert load.header["fingerprint"] == {"verb": "serve"}

"""Durable job state: journal fold on restart, atomic artifacts, epochs."""

import json
import os

import pytest

from repro.errors import ServeError
from repro.serve import JobSpec, ServeStore


def spec(n: int, verb: str = "check") -> JobSpec:
    return JobSpec(job=f"job-{n:06d}", tenant="default", verb=verb,
                   params={"faults": n}, seq=n)


class TestRecovery:
    def test_fresh_store_is_epoch_one(self, tmp_path):
        store = ServeStore(tmp_path)
        assert store.epoch == 1
        assert store.recovered == []
        assert store.next_seq == 1
        store.close()

    def test_pending_jobs_recover_in_admission_order(self, tmp_path):
        store = ServeStore(tmp_path)
        for n in (1, 2, 3):
            store.record_job(spec(n))
        store.record_done("job-000002", "done")
        store.close()

        reopened = ServeStore(tmp_path)
        assert reopened.epoch == 2
        assert [s.job for s in reopened.recovered] == ["job-000001", "job-000003"]
        assert reopened.terminal == {"job-000002": "done"}
        assert reopened.next_seq == 4
        reopened.close()

    def test_params_survive_the_round_trip(self, tmp_path):
        store = ServeStore(tmp_path)
        original = spec(1)
        store.record_job(original)
        store.close()
        reopened = ServeStore(tmp_path)
        assert reopened.recovered[0] == original
        reopened.close()

    def test_span_roots_recover(self, tmp_path):
        store = ServeStore(tmp_path)
        store.record_job(spec(1))
        store.record_span_root("job-000001", "t" * 32, "s" * 16)
        store.close()
        reopened = ServeStore(tmp_path)
        assert reopened.span_roots["job-000001"] == ("t" * 32, "s" * 16)
        # Epoch 2 allocates span ids from a disjoint block.
        assert reopened.span_id_base() > 0
        reopened.close()

    def test_truncated_serve_journal_tail_is_tolerated(self, tmp_path):
        store = ServeStore(tmp_path)
        store.record_job(spec(1))
        store.close()
        with open(tmp_path / "serve.jsonl", "ab") as fp:
            fp.write(b'deadbeef {"type":"job","job":"job-0')  # torn append
        reopened = ServeStore(tmp_path)
        assert [s.job for s in reopened.recovered] == ["job-000001"]
        reopened.close()

    def test_corrupt_mid_file_record_is_skipped_and_counted(self, tmp_path):
        store = ServeStore(tmp_path)
        store.record_job(spec(1))
        store.record_job(spec(2))
        store.close()
        raw = (tmp_path / "serve.jsonl").read_bytes().splitlines()
        # Flip a byte inside job-000001's admission record (line 2 after
        # header + epoch), keeping later records intact.
        target = 2
        raw[target] = raw[target][:-5] + b"X" + raw[target][-4:]
        (tmp_path / "serve.jsonl").write_bytes(b"\n".join(raw) + b"\n")
        with pytest.warns(RuntimeWarning):
            reopened = ServeStore(tmp_path)
        assert reopened.corrupt_records == 1
        assert [s.job for s in reopened.recovered] == ["job-000002"]
        reopened.close()

    def test_malformed_job_record_raises_serve_error(self):
        with pytest.raises(ServeError):
            JobSpec.from_record({"type": "job", "job": "x"})


class TestCompaction:
    @staticmethod
    def admit(store, verb="check"):
        seq = store.claim_seq()
        admitted = spec(seq, verb)
        store.record_job(admitted)
        return admitted

    def test_pending_state_survives_compaction_exactly(self, tmp_path):
        store = ServeStore(tmp_path)
        first = self.admit(store)
        done = self.admit(store)
        pending = self.admit(store)
        store.record_done(done.job, "done")
        store.record_attempt(pending.job, 2, "hang")
        store.record_span_root(pending.job, "t" * 32, "s" * 16)
        stats = store.compact(reason="test")
        assert stats["reason"] == "test"
        assert stats["records_after"] <= stats["records_before"]
        assert stats["archived_terminals"] == 0  # default keep covers it
        store.close()

        reopened = ServeStore(tmp_path)
        assert [s.job for s in reopened.recovered] == [first.job, pending.job]
        assert reopened.recovered[1] == pending  # params intact
        assert reopened.terminal == {done.job: "done"}
        assert reopened.attempts[pending.job] == 2
        assert reopened.span_roots[pending.job] == ("t" * 32, "s" * 16)
        assert reopened.next_seq == 4
        reopened.close()

    def test_pruned_terminals_never_reissue_job_ids(self, tmp_path):
        store = ServeStore(tmp_path)
        jobs = [self.admit(store) for _ in range(3)]
        for admitted in jobs:
            store.write_report(admitted.job, {
                "schema": "repro.obs/1", "kind": "t",
                "data": {"job": admitted.job},
            })
            store.record_done(admitted.job, "done")
        stats = store.compact(keep_terminal=0)
        assert stats["archived_terminals"] == 3
        assert stats["kept_terminals"] == 0
        store.close()

        reopened = ServeStore(tmp_path)
        # The terminal records are gone, but the seq counter rode the
        # snapshot: new admissions cannot collide with archived reports...
        assert reopened.terminal == {}
        assert reopened.archived_terminals == 3
        assert reopened.next_seq == 4
        assert reopened.claim_seq() == 4
        # ...and the report artifacts themselves are forever.
        for admitted in jobs:
            assert reopened.read_report(admitted.job) is not None
        reopened.close()

    def test_keep_terminal_retains_the_newest_records(self, tmp_path):
        store = ServeStore(tmp_path)
        jobs = [self.admit(store) for _ in range(4)]
        for admitted in jobs:
            store.record_done(admitted.job, "done")
        stats = store.compact(keep_terminal=2)
        assert stats["archived_terminals"] == 2
        assert stats["kept_terminals"] == 2
        assert sorted(store.terminal) == [jobs[2].job, jobs[3].job]
        # A second pass with nothing new archives nothing further but the
        # cumulative counter holds.
        stats = store.compact(keep_terminal=2)
        assert stats["archived_terminals"] == 0
        store.close()
        reopened = ServeStore(tmp_path)
        assert reopened.archived_terminals == 2
        reopened.close()

    def test_terminal_runner_journals_are_deleted_pending_kept(self, tmp_path):
        store = ServeStore(tmp_path)
        done = self.admit(store)
        pending = self.admit(store)
        store.job_journal(done.job).write_bytes(b"dead weight\n")
        store.job_journal(pending.job).write_bytes(b"resume state\n")
        store.record_done(done.job, "done")
        store.compact()
        assert not store.job_journal(done.job).exists()
        assert store.job_journal(pending.job).read_bytes() == b"resume state\n"
        store.close()

    def test_stale_compact_tmp_is_dropped_on_open(self, tmp_path):
        store = ServeStore(tmp_path)
        admitted = self.admit(store)
        store.close()
        # A crash at the compact-snapshot kill point leaves the tmp file;
        # it was never the live journal and must not shadow it.
        stale = tmp_path / "serve.jsonl.compact"
        stale.write_bytes(b"deadbeef not a journal\n")
        reopened = ServeStore(tmp_path)
        assert not stale.exists()
        assert [s.job for s in reopened.recovered] == [admitted.job]
        reopened.close()

    def test_degraded_flag_rides_through_compaction(self, tmp_path):
        store = ServeStore(tmp_path)
        admitted = self.admit(store)
        store.record_done(admitted.job, "done", detail="breaker", degraded=True)
        store.compact()
        assert store.terminal_records[admitted.job]["degraded"] is True
        store.close()
        reopened = ServeStore(tmp_path)
        assert reopened.terminal_records[admitted.job]["degraded"] is True
        reopened.close()


class TestArtifacts:
    def test_report_write_is_atomic_and_byte_stable_format(self, tmp_path):
        from repro.obs.export import write_json

        store = ServeStore(tmp_path)
        payload = {"schema": "repro.obs/1", "kind": "t", "data": {"a": 1}}
        store.write_report("job-000001", payload)
        stored = store.read_report("job-000001")
        reference = tmp_path / "ref.json"
        write_json(reference, payload)
        assert stored == reference.read_bytes()
        assert not any(
            name.endswith(".tmp") for name in os.listdir(store.jobs_dir)
        )
        store.close()

    def test_missing_artifacts_read_as_none(self, tmp_path):
        store = ServeStore(tmp_path)
        assert store.read_report("job-000009") is None
        assert store.read_runner("job-000009") is None
        store.close()

    def test_epoch_records_accumulate(self, tmp_path):
        for expected in (1, 2, 3):
            store = ServeStore(tmp_path)
            assert store.epoch == expected
            store.close()
        lines = (tmp_path / "serve.jsonl").read_bytes().splitlines()
        epochs = [
            json.loads(line[9:]) for line in lines
            if b'"type":"epoch"' in line
        ]
        assert [r["epoch"] for r in epochs] == [1, 2, 3]

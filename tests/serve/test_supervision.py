"""Worker supervision: hang detection, attempt budgets, degradation.

The service promises that a misbehaving job worker is *handled*, never
waited on forever and never silently dropped: heartbeat silence gets the
child SIGKILLed and the job requeued; repeated strikes exhaust a bounded,
journalled attempt budget into a terminal failure; a campaign whose worker
pool breaks degrades to a recorded serial re-run with byte-identical
output.  The hang tests freeze real children with SIGSTOP — the closest a
test gets to a genuinely wedged process.
"""

import json
import os
import signal
import threading
import time

import pytest

from repro.errors import RunnerError
from repro.serve import JobPaths, JobSpec, ServeClient, execute_job, read_endpoint
from tests.serve.harness import (
    CHECK_PARAMS,
    serial_report_bytes,
    start_serve,
)

#: Long enough to freeze mid-campaign, short enough for a test suite.
HANG_CHECK_PARAMS = {**CHECK_PARAMS, "faults": 80}


@pytest.fixture(scope="module")
def serial_small(tmp_path_factory):
    return serial_report_bytes(tmp_path_factory.mktemp("small"), CHECK_PARAMS)


@pytest.fixture(scope="module")
def serial_hang(tmp_path_factory):
    return serial_report_bytes(
        tmp_path_factory.mktemp("hang"), HANG_CHECK_PARAMS
    )


def running_pids(client) -> dict[str, int]:
    return {
        entry["job"]: entry["pid"]
        for entry in client.status()["running"]
        if entry.get("pid")
    }


def wait_for_pid(client, job, exclude=(), timeout_s=60.0) -> int:
    """Poll status until *job* runs on a pid outside *exclude*."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        pid = running_pids(client).get(job)
        if pid and pid not in exclude:
            return pid
        time.sleep(0.05)
    raise AssertionError(f"{job} never started on a fresh worker")


class TestHangDetection:
    def test_sigstopped_worker_is_killed_requeued_and_resumed(
        self, tmp_path, serial_hang
    ):
        journal_dir = tmp_path / "serve"
        proc = start_serve(journal_dir, "--hang-timeout", "1.5")
        try:
            host, port = read_endpoint(journal_dir, timeout_s=20)
            client = ServeClient(host, port)
            job = client.submit("check", HANG_CHECK_PARAMS)
            pid = wait_for_pid(client, job)
            # Freeze the worker mid-campaign: heartbeats stop, the
            # supervisor must SIGKILL it (SIGSTOP ignores SIGTERM) and
            # requeue the job.
            os.kill(pid, signal.SIGSTOP)
            deadline = time.monotonic() + 60
            while client.status()["counters"]["requeued"] < 1:
                assert time.monotonic() < deadline, "hang never detected"
                time.sleep(0.1)
            assert client.wait(job, timeout_s=600) == "done"
            status = client.status()
            assert status["epoch"] == 1  # handled in place, no restart
            assert status["counters"]["hung_kills"] >= 1
            reasons = {
                event["reason"] for event in client.events("job_requeued")
            }
            assert reasons <= {"hang", "timeout"} and reasons
            raw = client.report_bytes(job)
            assert raw == serial_hang
            runner = client.runner_doc(job)["data"]
            assert runner["journal"]["resumed"] is True
            client.drain()
            proc.wait(timeout=60)
            assert proc.returncode == 3
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()


class TestAttemptBudget:
    def test_repeated_hangs_exhaust_the_budget_into_terminal_failure(
        self, tmp_path
    ):
        journal_dir = tmp_path / "serve"
        proc = start_serve(
            journal_dir, "--hang-timeout", "1.0", "--job-attempts", "2"
        )
        try:
            host, port = read_endpoint(journal_dir, timeout_s=20)
            client = ServeClient(host, port)
            job = client.submit("probe", {"duration_s": 120.0})
            frozen: set[int] = set()
            # Freeze every attempt's worker; after --job-attempts strikes
            # the supervisor must stop retrying and fail the job.
            deadline = time.monotonic() + 120
            while client.job(job)["state"] != "failed":
                assert time.monotonic() < deadline, "budget never exhausted"
                pid = running_pids(client).get(job)
                if pid and pid not in frozen:
                    frozen.add(pid)
                    try:
                        os.kill(pid, signal.SIGSTOP)
                    except ProcessLookupError:
                        frozen.discard(pid)  # lost the race; next poll
                time.sleep(0.05)
            assert len(frozen) == 2  # one worker per budgeted attempt
            status = client.status()
            assert status["counters"]["hung_kills"] >= 2
            assert status["counters"]["failed"] == 1
            done = [
                event for event in client.events("job_done")
                if event["job"] == job
            ]
            assert done and done[-1]["status"] == "failed"
            # The journalled strikes survive a restart: the next epoch does
            # not resurrect a job that already exhausted its budget.
            client.drain()
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        proc2 = start_serve(journal_dir)
        try:
            host, port = read_endpoint(journal_dir, timeout_s=20, min_epoch=2)
            client2 = ServeClient(host, port)
            assert client2.job(job)["state"] == "failed"
            assert client2.status()["counters"]["resumed_jobs"] == 0
            client2.drain()
            proc2.wait(timeout=60)
        finally:
            if proc2.poll() is None:
                proc2.kill()
                proc2.wait()


class TestProbeFailure:
    def test_probe_fail_param_is_a_clean_terminal_failure(self, tmp_path):
        journal_dir = tmp_path / "serve"
        proc = start_serve(journal_dir)
        try:
            host, port = read_endpoint(journal_dir, timeout_s=20)
            client = ServeClient(host, port)
            job = client.submit("probe", {"duration_s": 0.01, "fail": True})
            assert client.wait(job, timeout_s=60) == "failed"
            assert client.status()["counters"]["failed"] == 1
            client.drain()
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()


class TestDegradation:
    """Deterministic pool-failure injection at the executor layer.

    End-to-end pool breakage is timing-dependent (a breaker needs real
    consecutive crashes), so these tests inject the failure at the seam
    ``_execute_check`` actually branches on and assert the degraded result
    is byte-identical to the serial oracle — the strongest version of
    "degraded, not different".
    """

    def _spec(self, n=1):
        return JobSpec(
            job=f"job-{n:06d}", tenant="default", verb="check",
            params=dict(CHECK_PARAMS), seq=n,
        )

    def test_runner_error_on_the_pool_degrades_to_serial_rerun(
        self, tmp_path, monkeypatch, serial_small
    ):
        import repro.faults as faults

        real = faults.run_check_parallel
        calls = []

        def flaky(*args, **kwargs):
            calls.append(kwargs.get("jobs"))
            if kwargs.get("jobs", 1) >= 2:
                raise RunnerError("injected: pooled task died terminally")
            return real(*args, **kwargs)

        monkeypatch.setattr(faults, "run_check_parallel", flaky)
        paths = JobPaths(tmp_path / "store")
        spec = self._spec()
        outcome = execute_job(
            spec, paths, threading.Event(),
            serve_counters={"epoch": 1}, jobs=2,
        )
        assert outcome.status == "done"
        assert outcome.degraded is True
        assert outcome.degrade_reason == "pool_breaker"
        assert "injected" in outcome.detail
        assert calls == [2, 1]  # pooled attempt, then the serial rescue
        raw = paths.read_report(spec.job)
        assert raw == serial_small
        runner_doc = json.loads(paths.read_runner(spec.job))
        degraded = runner_doc["data"]["serve"]["degraded"]
        assert degraded["reason"] == "pool_breaker"

    def test_pool_damage_forces_serial_rerun_on_the_same_journal(
        self, tmp_path, monkeypatch, serial_small
    ):
        from repro.serve import jobs as jobs_mod

        monkeypatch.setattr(
            jobs_mod, "_pool_damage",
            lambda runner: "tasks not ok after pooled run: inject:1",
        )
        paths = JobPaths(tmp_path / "store")
        spec = self._spec()
        outcome = execute_job(
            spec, paths, threading.Event(),
            serve_counters={"epoch": 1}, jobs=2,
        )
        assert outcome.status == "done"
        assert outcome.degraded is True
        assert outcome.degrade_reason == "pool_breaker"
        assert "inject:1" in outcome.detail
        # The serial rescue reused the pooled attempt's journal: its ok
        # records are cached, so the merged report is still the oracle's.
        assert paths.read_report(spec.job) == serial_small
        assert paths.job_journal(spec.job).exists()

    def test_runner_error_without_a_pool_is_a_real_failure(
        self, tmp_path, monkeypatch
    ):
        import repro.faults as faults

        def broken(*args, **kwargs):
            raise RunnerError("injected: serial campaign died")

        monkeypatch.setattr(faults, "run_check_parallel", broken)
        paths = JobPaths(tmp_path / "store")
        outcome = execute_job(self._spec(), paths, threading.Event(), jobs=1)
        assert outcome.status == "failed"
        assert outcome.degraded is False
        assert "injected" in outcome.detail

"""Tests for packed add/sub/min/max/avg against scalar NumPy references."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simd import arithmetic, lanes

WORDS = st.integers(min_value=0, max_value=lanes.WORD_MASK)
SUB_WIDTHS = st.sampled_from((8, 16, 32))


class TestWrapAround:
    def test_padd_basic(self):
        a = lanes.join([1, 2, 3, 4], 16)
        b = lanes.join([10, 20, 30, 40], 16)
        assert lanes.split(arithmetic.padd(a, b, 16), 16).tolist() == [11, 22, 33, 44]

    def test_padd_wraps(self):
        a = lanes.join([0xFF] * 8, 8)
        b = lanes.join([1] * 8, 8)
        assert arithmetic.padd(a, b, 8) == 0

    def test_psub_wraps(self):
        a = lanes.join([0] * 4, 16)
        b = lanes.join([1] * 4, 16)
        assert lanes.split(arithmetic.psub(a, b, 16), 16).tolist() == [0xFFFF] * 4

    def test_carry_does_not_cross_lanes(self):
        # 0x00FF + 0x0001 per byte pair: byte carry must not ripple upward.
        a = lanes.join([0xFF, 0x00] * 4, 8)
        b = lanes.join([0x01, 0x00] * 4, 8)
        assert lanes.split(arithmetic.padd(a, b, 8), 8).tolist() == [0, 0] * 4

    @given(WORDS, WORDS, SUB_WIDTHS)
    def test_padd_matches_modular_reference(self, a, b, width):
        got = lanes.split(arithmetic.padd(a, b, width), width)
        la = lanes.split(a, width).astype(object)
        lb = lanes.split(b, width).astype(object)
        expected = [(int(x) + int(y)) % (1 << width) for x, y in zip(la, lb)]
        assert got.tolist() == expected

    @given(WORDS, WORDS, SUB_WIDTHS)
    def test_padd_psub_inverse(self, a, b, width):
        assert arithmetic.psub(arithmetic.padd(a, b, width), b, width) == a

    @given(WORDS, WORDS, SUB_WIDTHS)
    def test_padd_commutative(self, a, b, width):
        assert arithmetic.padd(a, b, width) == arithmetic.padd(b, a, width)

    def test_padd_q64(self):
        assert arithmetic.padd(lanes.WORD_MASK, 1, 64) == 0


class TestSaturating:
    def test_padds_saturates_high(self):
        a = lanes.join([32767, 100, 0, -1], 16)
        b = lanes.join([1, 100, 0, -1], 16)
        assert lanes.split(arithmetic.padds(a, b, 16), 16, signed=True).tolist() == [
            32767,
            200,
            0,
            -2,
        ]

    def test_padds_saturates_low(self):
        a = lanes.join([-32768] * 4, 16)
        b = lanes.join([-1] * 4, 16)
        out = lanes.split(arithmetic.padds(a, b, 16), 16, signed=True)
        assert out.tolist() == [-32768] * 4

    def test_paddus_saturates(self):
        a = lanes.join([250] * 8, 8)
        b = lanes.join([10] * 8, 8)
        assert lanes.split(arithmetic.paddus(a, b, 8), 8).tolist() == [255] * 8

    def test_psubus_floors_at_zero(self):
        a = lanes.join([5] * 8, 8)
        b = lanes.join([10] * 8, 8)
        assert arithmetic.psubus(a, b, 8) == 0

    def test_psubs_saturates(self):
        a = lanes.join([-32768, 32767, 0, 0], 16)
        b = lanes.join([1, -1, 0, 0], 16)
        out = lanes.split(arithmetic.psubs(a, b, 16), 16, signed=True)
        assert out.tolist() == [-32768, 32767, 0, 0]

    @given(WORDS, WORDS, st.sampled_from((8, 16)))
    def test_padds_matches_clip_reference(self, a, b, width):
        la = lanes.split(a, width, signed=True).astype(int)
        lb = lanes.split(b, width, signed=True).astype(int)
        lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
        expected = [max(lo, min(hi, int(x) + int(y))) for x, y in zip(la, lb)]
        got = lanes.split(arithmetic.padds(a, b, width), width, signed=True)
        assert got.tolist() == expected

    @given(WORDS, WORDS, st.sampled_from((8, 16)))
    def test_saturating_bounded(self, a, b, width):
        lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
        got = lanes.split(arithmetic.padds(a, b, width), width, signed=True)
        assert all(lo <= int(v) <= hi for v in got)


class TestMinMaxAvg:
    def test_pavg_rounds_up(self):
        a = lanes.join([1] * 8, 8)
        b = lanes.join([2] * 8, 8)
        assert lanes.split(arithmetic.pavg(a, b, 8), 8).tolist() == [2] * 8

    def test_pmin_signed_vs_unsigned(self):
        a = lanes.join([-1, 0, 0, 0], 16)  # 0xFFFF unsigned
        b = lanes.join([1, 0, 0, 0], 16)
        signed = lanes.split(arithmetic.pmin(a, b, 16, signed=True), 16, signed=True)
        unsigned = lanes.split(arithmetic.pmin(a, b, 16, signed=False), 16)
        assert signed[0] == -1
        assert unsigned[0] == 1

    @given(WORDS, WORDS, SUB_WIDTHS, st.booleans())
    def test_min_max_partition(self, a, b, width, signed):
        lo = arithmetic.pmin(a, b, width, signed=signed)
        hi = arithmetic.pmax(a, b, width, signed=signed)
        sl = lanes.split(lo, width, signed=signed)
        sh = lanes.split(hi, width, signed=signed)
        sa = lanes.split(a, width, signed=signed)
        sb = lanes.split(b, width, signed=signed)
        for x, y, m, M in zip(sa, sb, sl, sh):
            assert sorted((int(x), int(y))) == [int(m), int(M)]

"""Unit and property tests for lane packing/unpacking."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import LaneError
from repro.simd import lanes

WORDS = st.integers(min_value=0, max_value=lanes.WORD_MASK)
WIDTHS = st.sampled_from(lanes.LANE_WIDTHS)


class TestSplitJoin:
    def test_split_bytes_little_endian(self):
        value = 0x0807060504030201
        assert lanes.split(value, 8).tolist() == [1, 2, 3, 4, 5, 6, 7, 8]

    def test_split_words(self):
        value = 0x0004_0003_0002_0001
        assert lanes.split(value, 16).tolist() == [1, 2, 3, 4]

    def test_split_dwords(self):
        value = 0x00000002_00000001
        assert lanes.split(value, 32).tolist() == [1, 2]

    def test_split_qword(self):
        assert lanes.split(12345, 64).tolist() == [12345]

    def test_split_signed(self):
        value = lanes.join([-1, 2, -3, 4], 16)
        assert lanes.split(value, 16, signed=True).tolist() == [-1, 2, -3, 4]

    def test_join_negative_wraps(self):
        assert lanes.join([-1] * 8, 8) == lanes.WORD_MASK

    def test_join_rejects_wrong_count(self):
        with pytest.raises(LaneError):
            lanes.join([1, 2, 3], 16)

    def test_split_rejects_bad_width(self):
        with pytest.raises(LaneError):
            lanes.split(0, 12)

    def test_split_rejects_oversized_word(self):
        with pytest.raises(LaneError):
            lanes.split(1 << 64, 8)

    def test_split_rejects_negative_word(self):
        with pytest.raises(LaneError):
            lanes.split(-1, 8)

    def test_split_returns_writable_copy(self):
        arr = lanes.split(0, 8)
        arr[0] = 7  # must not raise (frombuffer alone would be read-only)
        assert arr[0] == 7

    @given(WORDS, WIDTHS)
    def test_roundtrip_unsigned(self, value, width):
        assert lanes.join(lanes.split(value, width), width) == value

    @given(WORDS, WIDTHS)
    def test_roundtrip_signed(self, value, width):
        assert lanes.join(lanes.split(value, width, signed=True), width) == value

    @given(WORDS, WIDTHS)
    def test_lane_count_matches(self, value, width):
        assert len(lanes.split(value, width)) == lanes.lane_count(width)


class TestSignConversion:
    @pytest.mark.parametrize(
        "value,width,expected",
        [(0xFF, 8, -1), (0x7F, 8, 127), (0x80, 8, -128), (0xFFFF, 16, -1), (0x8000, 16, -32768)],
    )
    def test_to_signed(self, value, width, expected):
        assert lanes.to_signed(value, width) == expected

    @given(st.integers(-(2**15), 2**15 - 1))
    def test_sign_roundtrip16(self, value):
        assert lanes.to_signed(lanes.to_unsigned(value, 16), 16) == value


class TestHelpers:
    def test_replicate(self):
        assert lanes.replicate(0xAB, 8) == 0xABABABABABABABAB
        assert lanes.replicate(-1, 16) == lanes.WORD_MASK

    def test_extract_insert_roundtrip(self):
        value = 0x1122334455667788
        for i in range(4):
            lane = lanes.extract_lane(value, i, 16)
            assert lanes.insert_lane(value, i, 16, lane) == value

    def test_insert_lane_changes_only_target(self):
        out = lanes.insert_lane(0, 2, 16, 0xBEEF)
        assert lanes.split(out, 16).tolist() == [0, 0, 0xBEEF, 0]

    def test_extract_signed(self):
        value = lanes.join([-5, 0, 0, 0], 16)
        assert lanes.extract_lane(value, 0, 16, signed=True) == -5

    def test_extract_out_of_range(self):
        with pytest.raises(LaneError):
            lanes.extract_lane(0, 8, 16)

    def test_bytes_roundtrip(self):
        value = 0xDEADBEEFCAFEF00D
        assert lanes.from_bytes(lanes.bytes_of(value)) == value

    def test_from_bytes_rejects_short(self):
        with pytest.raises(LaneError):
            lanes.from_bytes(b"\x00" * 4)

    @given(WORDS, WIDTHS)
    def test_extract_matches_split(self, value, width):
        arr = lanes.split(value, width)
        for i in range(lanes.lane_count(width)):
            assert lanes.extract_lane(value, i, width) == arr[i]

"""Tests for packed multiply semantics, including the pmaddwd FIR core."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import LaneError
from repro.simd import lanes, multiply

WORDS = st.integers(min_value=0, max_value=lanes.WORD_MASK)
INT16 = st.integers(min_value=-(2**15), max_value=2**15 - 1)


class TestPmullwPmulhw:
    def test_pmullw_basic(self):
        a = lanes.join([3, -4, 100, 0], 16)
        b = lanes.join([7, 5, 300, 9], 16)
        out = lanes.split(multiply.pmullw(a, b), 16, signed=True)
        assert out.tolist() == [21, -20, (100 * 300) - 65536 * ((100 * 300 + 2**15) // 65536), 0] or True
        # the third lane wraps: 30000 fits in 16 bits signed? 30000 <= 32767 → no wrap
        assert out.tolist() == [21, -20, 30000, 0]

    def test_pmulhw_basic(self):
        a = lanes.join([0x4000, -0x4000, 1, 0], 16)
        b = lanes.join([0x4000, 0x4000, 1, 5], 16)
        out = lanes.split(multiply.pmulhw(a, b), 16, signed=True)
        # 0x4000*0x4000 = 2^28, high 16 bits = 2^12
        assert out.tolist() == [0x1000, -0x1000, 0, 0]

    def test_pmulhuw_unsigned(self):
        a = lanes.join([0xFFFF, 0, 0, 0], 16)
        b = lanes.join([0xFFFF, 0, 0, 0], 16)
        out = lanes.split(multiply.pmulhuw(a, b), 16)
        assert out[0] == (0xFFFF * 0xFFFF) >> 16

    @given(st.lists(INT16, min_size=4, max_size=4), st.lists(INT16, min_size=4, max_size=4))
    def test_low_high_reconstruct_product(self, xs, ys):
        a, b = lanes.join(xs, 16), lanes.join(ys, 16)
        low = lanes.split(multiply.pmullw(a, b), 16)
        high = lanes.split(multiply.pmulhw(a, b), 16, signed=True)
        for x, y, lo, hi in zip(xs, ys, low, high):
            assert int(hi) * 65536 + int(lo) == x * y


class TestPmaddwd:
    def test_paper_figure1(self):
        """Figure 1: four 16-bit products, adjacent pairs summed to 32 bits."""
        x = lanes.join([7, -2, 3, 11], 16)
        c = lanes.join([5, 6, -4, 2], 16)
        out = lanes.split(multiply.pmaddwd(x, c), 32, signed=True)
        assert out.tolist() == [7 * 5 + (-2) * 6, 3 * (-4) + 11 * 2]

    def test_fir_tap_pair(self):
        """pmaddwd + a 32-bit add realizes a four-tap FIR (paper §2)."""
        samples = [100, -50, 25, 12]
        coeffs = [1, 2, 3, 4]
        acc = lanes.split(
            multiply.pmaddwd(lanes.join(samples, 16), lanes.join(coeffs, 16)), 32, signed=True
        )
        assert int(acc[0]) + int(acc[1]) == sum(s * c for s, c in zip(samples, coeffs))

    def test_extreme_no_python_overflow(self):
        a = lanes.join([-32768] * 4, 16)
        out = lanes.split(multiply.pmaddwd(a, a), 32, signed=True)
        # (-32768)^2 * 2 = 2^31 wraps to -2^31 in 32-bit arithmetic
        assert out.tolist() == [-(2**31), -(2**31)]

    @given(st.lists(INT16, min_size=4, max_size=4), st.lists(INT16, min_size=4, max_size=4))
    def test_matches_reference(self, xs, ys):
        out = lanes.split(
            multiply.pmaddwd(lanes.join(xs, 16), lanes.join(ys, 16)), 32, signed=True
        )
        ref0 = xs[0] * ys[0] + xs[1] * ys[1]
        ref1 = xs[2] * ys[2] + xs[3] * ys[3]
        wrap = lambda v: (v + 2**31) % 2**32 - 2**31
        assert out.tolist() == [wrap(ref0), wrap(ref1)]


class TestWideningAndQuad:
    def test_pmuludq(self):
        a = lanes.join([0xFFFFFFFF, 7], 32)
        b = lanes.join([2, 9], 32)
        assert multiply.pmuludq(a, b) == 0xFFFFFFFF * 2

    def test_widening_rejects_64(self):
        with pytest.raises(LaneError):
            multiply.pmul_widening(0, 0, 64)

    @given(WORDS, WORDS, st.sampled_from((8, 16, 32)))
    def test_widening_reconstructs(self, a, b, width):
        low, high = multiply.pmul_widening(a, b, width, signed=True)
        ll = lanes.split(low, width)
        hh = lanes.split(high, width, signed=True)
        la = lanes.split(a, width, signed=True)
        lb = lanes.split(b, width, signed=True)
        for x, y, lo, hi in zip(la, lb, ll, hh):
            assert int(hi) * (1 << width) + int(lo) == int(x) * int(y)

"""Tests for pack/unpack, shifts, compares and logicals."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import LaneError
from repro.simd import compare, lanes, logical, pack, shift

WORDS = st.integers(min_value=0, max_value=lanes.WORD_MASK)
SUB_WIDTHS = st.sampled_from((8, 16, 32))


class TestUnpack:
    def test_punpckl_paper_figure2(self):
        """Figure 2: punpcklwd interleaves low 16-bit halves of MM0/MM1."""
        mm0 = lanes.join([0xD0, 0xC0, 0xB0, 0xA0], 16)
        mm1 = lanes.join([0xD1, 0xC1, 0xB1, 0xA1], 16)
        out = lanes.split(pack.punpckl(mm0, mm1, 16), 16)
        assert out.tolist() == [0xD0, 0xD1, 0xC0, 0xC1]

    def test_punpckh(self):
        mm0 = lanes.join([0, 1, 2, 3], 16)
        mm1 = lanes.join([4, 5, 6, 7], 16)
        out = lanes.split(pack.punpckh(mm0, mm1, 16), 16)
        assert out.tolist() == [2, 6, 3, 7]

    def test_punpckl_bytes(self):
        a = lanes.join(list(range(8)), 8)
        b = lanes.join(list(range(8, 16)), 8)
        out = lanes.split(pack.punpckl(a, b, 8), 8)
        assert out.tolist() == [0, 8, 1, 9, 2, 10, 3, 11]

    def test_punpckl_dq(self):
        a = lanes.join([111, 222], 32)
        b = lanes.join([333, 444], 32)
        assert lanes.split(pack.punpckl(a, b, 32), 32).tolist() == [111, 333]
        assert lanes.split(pack.punpckh(a, b, 32), 32).tolist() == [222, 444]

    def test_unpack_rejects_64(self):
        with pytest.raises(LaneError):
            pack.punpckl(0, 0, 64)

    @given(WORDS, WORDS, SUB_WIDTHS)
    def test_unpack_covers_both_sources(self, a, b, width):
        lo = lanes.split(pack.punpckl(a, b, width), width)
        hi = lanes.split(pack.punpckh(a, b, width), width)
        la, lb = lanes.split(a, width), lanes.split(b, width)
        combined = sorted(lo.tolist() + hi.tolist())
        assert combined == sorted(la.tolist() + lb.tolist())


class TestPack:
    def test_packss_16_to_8(self):
        a = lanes.join([300, -300, 5, -5], 16)
        b = lanes.join([127, -128, 0, 1], 16)
        out = lanes.split(pack.packss(a, b, 16), 8, signed=True)
        assert out.tolist() == [127, -128, 5, -5, 127, -128, 0, 1]

    def test_packus_clamps_negative_to_zero(self):
        a = lanes.join([-1, 256, 100, 0], 16)
        out = lanes.split(pack.packus(a, a, 16), 8)
        assert out.tolist() == [0, 255, 100, 0] * 2

    def test_packss_32_to_16(self):
        a = lanes.join([100000, -100000], 32)
        b = lanes.join([1, -1], 32)
        out = lanes.split(pack.packss(a, b, 32), 16, signed=True)
        assert out.tolist() == [32767, -32768, 1, -1]

    def test_pack_rejects_8(self):
        with pytest.raises(LaneError):
            pack.packss(0, 0, 8)

    @given(WORDS, WORDS)
    def test_pack_unpack_identity_when_in_range(self, a, b):
        """Saturating pack is the identity on lanes already in range."""
        la = lanes.split(a, 16, signed=True)
        clamped = [max(-128, min(127, int(v))) for v in la]
        aa = lanes.join(clamped, 16)
        out = lanes.split(pack.packss(aa, aa, 16), 8, signed=True)
        assert out.tolist() == clamped * 2


class TestPermuteWord:
    def test_reverse(self):
        v = lanes.join([1, 2, 3, 4], 16)
        out = pack.permute_word(v, [3, 2, 1, 0], 16)
        assert lanes.split(out, 16).tolist() == [4, 3, 2, 1]

    def test_none_keeps_lane(self):
        v = lanes.join([1, 2, 3, 4], 16)
        out = pack.permute_word(v, [None, 0, None, 0], 16)
        assert lanes.split(out, 16).tolist() == [1, 1, 3, 1]

    def test_rejects_bad_selector(self):
        with pytest.raises(LaneError):
            pack.permute_word(0, [0, 1], 16)
        with pytest.raises(LaneError):
            pack.permute_word(0, [0, 1, 2, 9], 16)


class TestShifts:
    def test_psll_per_lane(self):
        v = lanes.join([1, 2, 3, 4], 16)
        assert lanes.split(shift.psll(v, 4, 16), 16).tolist() == [16, 32, 48, 64]

    def test_psll_no_cross_lane_leak(self):
        v = lanes.join([0x8000, 0, 0, 0], 16)
        assert shift.psll(v, 1, 16) == 0  # MSB must not spill into lane 1

    def test_psrl_logical(self):
        v = lanes.join([0x8000] * 4, 16)
        assert lanes.split(shift.psrl(v, 15, 16), 16).tolist() == [1] * 4

    def test_psra_sign_fill(self):
        v = lanes.join([-2, 4, -8, 16], 16)
        assert lanes.split(shift.psra(v, 1, 16), 16, signed=True).tolist() == [-1, 2, -4, 8]

    def test_oversized_counts(self):
        v = lanes.join([-2, 4, -8, 16], 16)
        assert shift.psll(v, 16, 16) == 0
        assert shift.psrl(v, 99, 16) == 0
        out = lanes.split(shift.psra(v, 99, 16), 16, signed=True)
        assert out.tolist() == [-1, 0, -1, 0]

    def test_negative_count_rejected(self):
        with pytest.raises(LaneError):
            shift.psll(0, -1, 16)

    def test_byte_shifts(self):
        v = 0x1122334455667788
        assert shift.psllq_bytes(v, 2) == 0x3344556677880000
        assert shift.psrlq_bytes(v, 2) == 0x0000112233445566
        assert shift.psllq_bytes(v, 8) == 0
        assert shift.psrlq_bytes(v, 9) == 0

    def test_psrlq_no_sign_smear(self):
        """Regression: 64-bit logical right shift of an MSB-set word must
        zero-fill (found by the off-load differential fuzzer)."""
        assert shift.psrl(0x844BC482D2289600, 8, 64) == 0x00844BC482D2289600 >> 8
        assert shift.psrl(0xFFFFFFFFFFFFFFFF, 8, 64) == 0x00FFFFFFFFFFFFFF

    def test_psllq_msb_set(self):
        assert shift.psll(0xFF00000000000001, 8, 64) == 0x0000000000000100

    @given(WORDS, st.integers(0, 63))
    def test_q64_shifts_match_python_semantics(self, v, count):
        assert shift.psrl(v, count, 64) == v >> count
        assert shift.psll(v, count, 64) == (v << count) & lanes.WORD_MASK

    @given(WORDS, st.integers(0, 15))
    def test_psll_psrl_inverse_on_clean_lanes(self, v, count):
        cleared = shift.psrl(shift.psll(v, count, 16), count, 16)
        masked = lanes.join(
            [(int(x) << count & 0xFFFF) >> count for x in lanes.split(v, 16)], 16
        )
        assert cleared == masked


class TestCompareLogical:
    def test_pcmpeq(self):
        a = lanes.join([1, 2, 3, 4], 16)
        b = lanes.join([1, 0, 3, 0], 16)
        assert lanes.split(compare.pcmpeq(a, b, 16), 16).tolist() == [0xFFFF, 0, 0xFFFF, 0]

    def test_pcmpgt_signed(self):
        a = lanes.join([1, -1, 5, 0], 16)
        b = lanes.join([0, 1, 5, -9], 16)
        assert lanes.split(compare.pcmpgt(a, b, 16), 16).tolist() == [0xFFFF, 0, 0, 0xFFFF]

    def test_pxor_self_clears(self):
        assert logical.pxor(0xDEADBEEF, 0xDEADBEEF) == 0

    def test_pandn(self):
        assert logical.pandn(0xF0F0, 0xFFFF) == 0x0F0F

    @given(WORDS, WORDS)
    def test_demorgan(self, a, b):
        lhs = logical.pandn(logical.por(a, b), lanes.WORD_MASK)
        rhs = logical.pand(
            logical.pandn(a, lanes.WORD_MASK), logical.pandn(b, lanes.WORD_MASK)
        )
        assert lhs == rhs

    @given(WORDS, WORDS, SUB_WIDTHS)
    def test_cmpeq_reflexive(self, a, b, width):
        assert compare.pcmpeq(a, a, width) == lanes.WORD_MASK

"""Property tests: the SWAR data path is bit-identical to the NumPy oracle.

Every public packed op is evaluated through both backends — the integer
SWAR implementation exported by :mod:`repro.simd` and the NumPy
lane-vector reference in :mod:`repro.simd.reference` — on hypothesis-drawn
64-bit words plus the carry-break corner patterns, across every width each
op accepts.  This is the shrinking, exhaustive sibling of the seeded
sample differ (:mod:`repro.simd.selftest`) that ``repro check
--swar-check`` runs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import simd
from repro.simd import lanes, reference, swar
from repro.simd.selftest import ADVERSARIAL_WORDS, sample_diff

WORDS = st.one_of(
    st.sampled_from(ADVERSARIAL_WORDS),
    st.integers(min_value=0, max_value=lanes.WORD_MASK),
)
ALL_WIDTHS = st.sampled_from(lanes.LANE_WIDTHS)
SUB_WIDTHS = st.sampled_from((8, 16, 32))
PACK_WIDTHS = st.sampled_from((16, 32))
SHIFT_WIDTHS = st.sampled_from((16, 32, 64))
COUNTS = st.integers(min_value=0, max_value=80)

#: (op name, widths strategy) for plain two-word ops.
BINARY_WIDTH_OPS = [
    ("padd", ALL_WIDTHS), ("psub", ALL_WIDTHS),
    ("padds", ALL_WIDTHS), ("psubs", ALL_WIDTHS),
    ("paddus", ALL_WIDTHS), ("psubus", ALL_WIDTHS),
    ("pavg", ALL_WIDTHS),
    ("pcmpeq", ALL_WIDTHS), ("pcmpgt", ALL_WIDTHS),
    ("punpckl", SUB_WIDTHS), ("punpckh", SUB_WIDTHS),
    ("packss", PACK_WIDTHS), ("packus", PACK_WIDTHS),
]
BINARY_NOWIDTH_OPS = [
    "pmullw", "pmulhw", "pmulhuw", "pmaddwd", "pmuludq",
    "pand", "pandn", "por", "pxor",
]


@pytest.mark.parametrize("op,widths", BINARY_WIDTH_OPS)
@given(a=WORDS, b=WORDS, data=st.data())
def test_binary_width_ops_match_reference(op, widths, a, b, data):
    width = data.draw(widths)
    assert getattr(simd, op)(a, b, width) == \
        getattr(reference, op)(a, b, width)


@pytest.mark.parametrize("op", BINARY_NOWIDTH_OPS)
@given(a=WORDS, b=WORDS)
def test_binary_nowidth_ops_match_reference(op, a, b):
    assert getattr(simd, op)(a, b) == getattr(reference, op)(a, b)


@pytest.mark.parametrize("op", ["pmin", "pmax"])
@given(a=WORDS, b=WORDS, width=ALL_WIDTHS, signed=st.booleans())
def test_minmax_matches_reference(op, a, b, width, signed):
    assert getattr(simd, op)(a, b, width, signed=signed) == \
        getattr(reference, op)(a, b, width, signed=signed)


@pytest.mark.parametrize("op", ["psll", "psrl"])
@given(value=WORDS, count=COUNTS, width=SHIFT_WIDTHS)
def test_logical_shifts_match_reference(op, value, count, width):
    assert getattr(simd, op)(value, count, width) == \
        getattr(reference, op)(value, count, width)


@given(value=WORDS, count=COUNTS, width=st.sampled_from((16, 32)))
def test_psra_matches_reference(value, count, width):
    assert simd.psra(value, count, width) == \
        reference.psra(value, count, width)


@given(value=WORDS, nbytes=st.integers(min_value=0, max_value=16))
def test_byte_shifts_match_reference(value, nbytes):
    assert simd.psllq_bytes(value, nbytes) == \
        reference.psllq_bytes(value, nbytes)
    assert simd.psrlq_bytes(value, nbytes) == \
        reference.psrlq_bytes(value, nbytes)


@given(a=WORDS, b=WORDS, width=SUB_WIDTHS, signed=st.booleans())
def test_widening_multiply_matches_reference(a, b, width, signed):
    assert simd.pmul_widening(a, b, width, signed=signed) == \
        reference.pmul_widening(a, b, width, signed=signed)


@given(value=WORDS, width=SUB_WIDTHS, data=st.data())
def test_permute_word_matches_reference(value, width, data):
    count = lanes.lane_count(width)
    selector = data.draw(st.lists(
        st.one_of(st.none(), st.integers(min_value=0, max_value=count - 1)),
        min_size=count, max_size=count,
    ))
    assert simd.permute_word(value, selector, width) == \
        reference.permute_word(value, selector, width)


class TestValidationToggle:
    def test_disabled_by_default_on_the_hot_path(self):
        assert not simd.validation_enabled()

    def test_full_validation_catches_out_of_range_words(self):
        bad = lanes.WORD_MASK + 1
        assert simd.padd(bad, 0, 16) == simd.padd(bad, 0, 16)  # unchecked
        with simd.full_validation():
            assert simd.validation_enabled()
            with pytest.raises(Exception):
                simd.padd(bad, 0, 16)
        assert not simd.validation_enabled()

    def test_set_validation_returns_previous(self):
        assert simd.set_validation(True) is False
        try:
            assert simd.validation_enabled()
        finally:
            assert simd.set_validation(False) is True

    def test_validation_does_not_change_results(self):
        a, b = 0x8000_7FFF_0001_FFFF, 0x0123_4567_89AB_CDEF
        plain = simd.padds(a, b, 16)
        with simd.full_validation():
            assert simd.padds(a, b, 16) == plain


class TestBackendSwitch:
    def test_default_is_swar(self):
        assert simd.backend_name() == "swar"
        assert simd.active_backend() is simd

    def test_use_backend_scopes_the_switch(self):
        with simd.use_backend("reference"):
            assert simd.backend_name() == "reference"
            assert simd.active_backend() is reference
        assert simd.backend_name() == "swar"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            simd.set_backend("mmx")


class TestReplicate:
    @given(value=st.integers(min_value=0, max_value=0xFF))
    def test_replicate_broadcasts_every_byte(self, value):
        assert lanes.split(lanes.replicate(value, 8), 8).tolist() == [value] * 8

    def test_replicate_uses_the_low_column(self):
        # The multiply-by-low-column broadcast: one lane value spread to all.
        assert lanes.replicate(0xAB, 16) == 0x00AB * swar.MASKS[16][1]


@settings(deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32))
def test_sample_diff_is_clean_and_deterministic(seed):
    first = sample_diff(seed=seed, samples=4)
    assert first["mismatches"] == 0
    assert first == sample_diff(seed=seed, samples=4)

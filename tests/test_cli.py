"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "FIR12" in out and "MatrixTranspose" in out

    def test_cost_default(self, capsys):
        assert main(["cost"]) == 0
        out = capsys.readouterr().out
        assert "2.36 mm2" in out and "0.91%" in out

    def test_cost_config_a(self, capsys):
        assert main(["cost", "--config", "A"]) == 0
        assert "8.14 mm2" in capsys.readouterr().out

    def test_cost_contexts(self, capsys):
        assert main(["cost", "--contexts", "2"]) == 0
        assert "20224 bits" in capsys.readouterr().out

    def test_run_kernel(self, capsys):
        assert main(["run", "DotProduct"]) == 0
        out = capsys.readouterr().out
        assert "bit-exactly" in out and "speedup" in out

    def test_run_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "Sobel"])

    def test_offload(self, capsys):
        assert main(["offload", "DotProduct"]) == 0
        out = capsys.readouterr().out
        assert "punpcklwd" in out and "SPU program" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_fig9_fast(self, capsys):
        assert main(["fig9", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out and "MatrixTranspose" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestCompileCommand:
    def test_compile_file(self, capsys, tmp_path):
        source = tmp_path / "demo.asm"
        source.write_text(
            "mov r0, 4\nloop:\nmovq mm1, mm0\npunpcklwd mm1, mm0\n"
            "movq [r2], mm1\nadd r2, 8\nloop r0, loop\nhalt\n"
        )
        assert main(["compile", str(source)]) == 0
        out = capsys.readouterr().out
        assert "accelerated loops: loop" in out
        assert "controller context 0" in out
        assert "punpcklwd" not in out.split("; ---")[0].split("accelerated")[1]

    def test_compile_nothing_to_do(self, capsys, tmp_path):
        source = tmp_path / "plain.asm"
        source.write_text("mov r0, 2\ntop: paddw mm0, mm1\nloop r0, top\nhalt\n")
        assert main(["compile", str(source)]) == 1
        assert "no loops accelerated" in capsys.readouterr().out
